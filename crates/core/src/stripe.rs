//! Multi-link striped bulk transfer.
//!
//! The paper's selection machinery picks *one* method per link; this module
//! goes wider. A [`StripedObject`] is a composite [`CommObject`] wrapping K
//! underlying connections ("rails", possibly method-heterogeneous — e.g.
//! shmem + TCP) that splits one encode-once frame body into K chunks and
//! sends them over the rails concurrently-in-flight; a [`StripeAssembler`]
//! on the receive side reassembles the chunks — tolerating out-of-order,
//! duplicated (RUDP retransmit), and interleaved transfers — and delivers
//! exactly one [`Rsr`] upward. This is the CommBench "rail" pattern: when
//! per-link bandwidth is the bottleneck, K rails give ~K× the throughput of
//! the single fastest link.
//!
//! # Chunk framing
//!
//! A chunk is an ordinary RSR addressed to the reserved handler
//! [`STRIPE_HANDLER`] whose payload is a 20-byte [`StripeMeta`] header
//! followed by a zero-copy [`Bytes::slice`] of the original frame body:
//!
//! ```text
//! transfer_id u64 | index u16 | total u16 | body_len u32 | offset u32 | data
//! ```
//!
//! Because chunks ride the normal RSR path, every transport — and every
//! recovery mechanism (failover, forwarding) — works for them unchanged.
//! `body_len == 0` selects *slot mode* (used by gather): chunks are
//! collected by index without byte-offset accounting and handed back as
//! separate parts rather than one contiguous body.
//!
//! # Weighted striping
//!
//! Chunk sizes follow the measured per-rail bandwidth (frame bytes over
//! send-cost EWMA, both already collected in [`crate::trace`]): fast rails
//! get proportionally bigger chunks ([`weighted_shares`]). Shares smaller
//! than a minimum chunk size are folded into the fastest rail — striping
//! tiny pieces costs more in per-chunk overhead than it wins — and bodies
//! at or below the small-payload cutoff bypass striping entirely, so the
//! 16 B latency path is untouched.
//!
//! # Allocation discipline
//!
//! The send side allocates nothing in steady state: chunk headers live on
//! the stack, chunk data are refcounted views of the encode-once body, and
//! the chunk RSR reuses an interned handler and the shared empty payload.
//! The assembler holds each arriving chunk payload whole (so its pooled
//! storage can be reclaimed), appends the data sections in index order
//! into a pooled buffer at completion, and recycles its per-transfer slot
//! vectors through a free list.

use crate::descriptor::MethodId;
use crate::error::{NexusError, Result};
use crate::module::CommObject;
use crate::pool;
use crate::rsr::{HandlerName, Rsr, WireFrame};
use crate::trace::LinkMethodTrace;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Reserved handler name carrying stripe chunks. Handlers beginning with
/// `'#'` are intercepted by `Context::dispatch` before endpoint lookup and
/// cannot be registered by applications.
pub const STRIPE_HANDLER: &str = "#stripe";

/// Reserved handler name carrying gather contributions (slot mode).
pub const GATHER_HANDLER: &str = "#gather";

/// Encoded size of [`StripeMeta`].
pub const META_LEN: usize = 8 + 2 + 2 + 4 + 4;

/// Maximum chunks per transfer (the assembler's receipt bitmap is a u64).
pub const MAX_CHUNKS: usize = 64;

/// Maximum rails a [`StripedObject`] will stripe across.
pub const MAX_RAILS: usize = 16;

/// Default small-payload cutoff: bodies at or below this many bytes are
/// sent whole over the fastest rail, leaving the latency path untouched.
pub const DEFAULT_CUTOFF: usize = 4096;

/// Default minimum chunk size: a share smaller than this is folded into
/// the fastest rail rather than paying per-chunk overhead.
pub const DEFAULT_MIN_CHUNK: usize = 1024;

/// Largest data section a single chunk carries. A rail's share is split
/// into segments no bigger than this so the per-chunk combine buffer
/// (`META_LEN + segment`) stays inside the buffer pool's reuse cap —
/// sending a multi-MiB share as one chunk would allocate (and fault in)
/// fresh pages on every transfer. Bodies too large for `MAX_CHUNKS`
/// segments of this size use proportionally larger segments instead.
pub const MAX_CHUNK_PAYLOAD: usize = 512 * 1024;

/// Incomplete transfers the assembler retains before evicting the oldest.
/// Bounds memory against senders that die mid-transfer (the failover e2e
/// exercises exactly that) or hostile half-streams.
pub const MAX_CONCURRENT_TRANSFERS: usize = 64;

fn interned(cell: &'static OnceLock<HandlerName>, name: &str) -> HandlerName {
    cell.get_or_init(|| HandlerName::intern(name)).clone()
}

/// The interned [`STRIPE_HANDLER`] (cached: cloning is a refcount bump).
pub fn stripe_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, STRIPE_HANDLER)
}

/// The interned [`GATHER_HANDLER`].
pub fn gather_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, GATHER_HANDLER)
}

// ---------------------------------------------------------------------------
// Chunk metadata
// ---------------------------------------------------------------------------

/// The per-chunk header prepended to each chunk's data section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMeta {
    /// Identifies the transfer this chunk belongs to. Unique per sending
    /// process; gather mixes a collective name hash with the round.
    pub transfer_id: u64,
    /// This chunk's position, `0..total`.
    pub index: u16,
    /// Total chunks in the transfer (≤ [`MAX_CHUNKS`]).
    pub total: u16,
    /// Reassembled body length in bytes, or 0 for slot mode (gather).
    pub body_len: u32,
    /// Byte offset of this chunk's data within the body; in slot mode the
    /// field is repurposed as an application tag (gather: the round).
    pub offset: u32,
}

impl StripeMeta {
    /// Serializes the header onto the stack.
    pub fn to_bytes(self) -> [u8; META_LEN] {
        let mut b = [0u8; META_LEN];
        b[0..8].copy_from_slice(&self.transfer_id.to_le_bytes());
        b[8..10].copy_from_slice(&self.index.to_le_bytes());
        b[10..12].copy_from_slice(&self.total.to_le_bytes());
        b[12..16].copy_from_slice(&self.body_len.to_le_bytes());
        b[16..20].copy_from_slice(&self.offset.to_le_bytes());
        b
    }

    /// Parses the header from the front of a chunk payload.
    pub fn parse(payload: &[u8]) -> Result<StripeMeta> {
        if payload.len() < META_LEN {
            return Err(NexusError::Decode("stripe chunk shorter than its header"));
        }
        Ok(StripeMeta {
            transfer_id: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            index: u16::from_le_bytes(payload[8..10].try_into().unwrap()),
            total: u16::from_le_bytes(payload[10..12].try_into().unwrap()),
            body_len: u32::from_le_bytes(payload[12..16].try_into().unwrap()),
            offset: u32::from_le_bytes(payload[16..20].try_into().unwrap()),
        })
    }
}

// ---------------------------------------------------------------------------
// Weighted share assignment
// ---------------------------------------------------------------------------

/// Splits `total` bytes across rails in proportion to `rates` (bytes/ns;
/// non-finite or non-positive entries mean "unmeasured" and receive the
/// mean measured rate, or an equal share when nothing is measured yet).
/// Shares smaller than `min_chunk` are folded into the fastest rail.
/// Writes one share per rate into `shares` and returns the number of
/// nonzero shares. The shares always sum to exactly `total`.
///
/// Pure so the simnet bandwidth model can mirror the runtime's split
/// bit-for-bit.
pub fn weighted_shares(
    total: usize,
    rates: &[f64],
    min_chunk: usize,
    shares: &mut [usize],
) -> usize {
    let n = rates.len();
    assert!(n <= shares.len(), "shares buffer shorter than rates");
    if n == 0 {
        return 0;
    }
    let measured = |r: f64| r.is_finite() && r > 0.0;
    let (msum, mcount) = rates
        .iter()
        .filter(|r| measured(**r))
        .fold((0.0, 0usize), |(s, c), r| (s + r, c + 1));
    let fallback = if mcount == 0 {
        1.0
    } else {
        msum / mcount as f64
    };
    let weight = |r: f64| if measured(r) { r } else { fallback };
    let wsum: f64 = rates.iter().map(|&r| weight(r)).sum();
    let mut best = 0usize;
    for i in 0..n {
        if weight(rates[i]) > weight(rates[best]) {
            best = i;
        }
    }
    let mut assigned = 0usize;
    for i in 0..n {
        shares[i] = ((total as f64) * weight(rates[i]) / wsum) as usize;
        assigned += shares[i];
    }
    // Flooring leaves a remainder; the fastest rail absorbs it.
    shares[best] += total - assigned;
    // Fold sub-minimum shares into the fastest rail: striping tiny pieces
    // costs more per-chunk overhead than the parallelism wins back.
    for i in 0..n {
        if i != best && shares[i] > 0 && shares[i] < min_chunk {
            shares[best] += shares[i];
            shares[i] = 0;
        }
    }
    shares[..n].iter().filter(|&&s| s > 0).count()
}

// ---------------------------------------------------------------------------
// StripedObject (send side)
// ---------------------------------------------------------------------------

/// One underlying connection a [`StripedObject`] stripes over.
pub struct StripeRail {
    /// The connection carrying this rail's chunks.
    pub obj: Arc<dyn CommObject>,
    /// Measured per-link/method send statistics driving this rail's share
    /// of each transfer; `None` means unmeasured.
    pub ltrace: Option<Arc<LinkMethodTrace>>,
    /// Explicit bandwidth weight override (bytes/ns). Takes precedence
    /// over `ltrace`; benches and tests use it for deterministic splits.
    pub weight: Option<f64>,
}

impl StripeRail {
    /// A rail with no measurements: shares are assigned evenly until the
    /// trace warms up.
    pub fn new(obj: Arc<dyn CommObject>) -> Self {
        StripeRail {
            obj,
            ltrace: None,
            weight: None,
        }
    }

    pub(crate) fn rate(&self) -> f64 {
        if let Some(w) = self.weight {
            return w;
        }
        match &self.ltrace {
            Some(t) => match (t.send_bytes.mean(), t.send_cost_ns.value()) {
                (Some(bytes), Some(ns)) if ns > 0.0 => bytes / ns,
                _ => f64::NAN,
            },
            None => f64::NAN,
        }
    }
}

/// Process-unique transfer ids: pid in the high bits (distinguishing
/// senders across processes sharing a receiver) over a process counter.
fn next_transfer_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    ((std::process::id() as u64) << 40) ^ NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A composite [`CommObject`] that splits each sufficiently large frame
/// body across its rails. Small bodies (≤ cutoff) pass through whole on
/// the first (fastest) rail with the standard wire format, so enabling
/// striping never perturbs the latency path.
pub struct StripedObject {
    rails: Vec<StripeRail>,
    cutoff: AtomicUsize,
    min_chunk: AtomicUsize,
}

impl StripedObject {
    /// Builds a striped sender over `rails`, ordered fastest-first (the
    /// first rail carries passthrough sends). Only the first
    /// [`MAX_RAILS`] rails participate in striping.
    ///
    /// # Panics
    /// If `rails` is empty.
    pub fn new(rails: Vec<StripeRail>) -> Self {
        assert!(!rails.is_empty(), "a StripedObject needs at least one rail");
        StripedObject {
            rails,
            cutoff: AtomicUsize::new(DEFAULT_CUTOFF),
            min_chunk: AtomicUsize::new(DEFAULT_MIN_CHUNK),
        }
    }

    /// Sets the small-payload cutoff (bytes of frame body at or below
    /// which striping is bypassed).
    pub fn with_cutoff(self, cutoff: usize) -> Self {
        self.cutoff.store(cutoff, Ordering::Relaxed);
        self
    }

    /// Sets the minimum per-rail chunk size.
    pub fn with_min_chunk(self, min_chunk: usize) -> Self {
        self.min_chunk.store(min_chunk.max(1), Ordering::Relaxed);
        self
    }

    /// Number of rails.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }
}

impl CommObject for StripedObject {
    fn method(&self) -> MethodId {
        MethodId::STRIPE
    }

    fn send(&self, rsr: &Rsr, frame: &WireFrame) -> Result<()> {
        striped_send(self, rsr, frame)
    }

    fn set_param(&self, key: &str, value: &str) -> Result<()> {
        let parsed = value.parse::<usize>().map_err(|_| NexusError::BadParam {
            key: key.to_owned(),
            reason: format!("expected a byte count, got {value:?}"),
        });
        match key {
            "cutoff" => {
                self.cutoff.store(parsed?, Ordering::Relaxed);
                Ok(())
            }
            "min_chunk" => {
                self.min_chunk.store(parsed?.max(1), Ordering::Relaxed);
                Ok(())
            }
            _ => Err(NexusError::BadParam {
                key: key.to_owned(),
                reason: "stripe parameters are cutoff, min_chunk".to_owned(),
            }),
        }
    }

    // close() deliberately does nothing: rails are shared with the plain
    // per-method connection cache, and each rail's own failover path is
    // responsible for invalidating it.
}

/// The stripe send path (a registered `hot-path-alloc` lint root).
///
/// Splits the encode-once frame body into weighted chunks, each sent as a
/// `(StripeMeta ++ data-slice)` payload via [`CommObject::send_parts`].
/// A rail that fails mid-transfer is excluded and its chunks retry over
/// the surviving rails (the assembler does not care which rail delivered
/// a chunk); only when every rail has failed does the error propagate,
/// feeding the context-level re-selection/failover path.
fn striped_send(obj: &StripedObject, rsr: &Rsr, frame: &WireFrame) -> Result<()> {
    let n = obj.rails.len().min(MAX_RAILS);
    if n < 2 || rsr.body_len() <= obj.cutoff.load(Ordering::Relaxed) {
        return obj.rails[0].obj.send(rsr, frame);
    }
    let body = frame.body(rsr).clone();
    let body_len = body.len();
    let mut rates = [f64::NAN; MAX_RAILS];
    for (i, rail) in obj.rails.iter().take(n).enumerate() {
        rates[i] = rail.rate();
    }
    let mut shares = [0usize; MAX_RAILS];
    let chunks = weighted_shares(
        body_len,
        &rates[..n],
        obj.min_chunk.load(Ordering::Relaxed),
        &mut shares[..n],
    );
    if chunks <= 1 {
        // Everything folded onto one rail: skip chunk framing entirely.
        let i = shares[..n].iter().position(|&s| s > 0).unwrap_or(0);
        return obj.rails[i].obj.send(rsr, frame);
    }
    // Shares are further split into pool-friendly segments. The floor
    // keeps the total within the assembler's MAX_CHUNKS receipt bitmap:
    // sum(ceil(share/cap)) <= body/cap + rails <= MAX_CHUNKS whenever
    // cap >= body/(MAX_CHUNKS - rails).
    let seg_cap = MAX_CHUNK_PAYLOAD.max(body_len.div_ceil(MAX_CHUNKS - n));
    let transfer_id = next_transfer_id();
    let chunk_rsr = Rsr {
        dest: rsr.dest,
        endpoint: rsr.endpoint,
        handler: stripe_handler(),
        ttl: rsr.ttl,
        payload: Bytes::new(),
    };
    send_chunks(
        &obj.rails[..n],
        &chunk_rsr,
        transfer_id,
        &body,
        &shares[..n],
        seg_cap,
    )
}

/// Sends `body` as `(StripeMeta ++ data-slice)` chunk RSRs over `rails`:
/// rail `i` carries `shares[i]` bytes, split into segments of at most
/// `seg_cap` data bytes each. A rail that fails mid-stream is excluded
/// and its remaining chunks retry on the survivors; only when every rail
/// has failed does the error propagate. Shared by [`striped_send`] and
/// the bulk pull engine, which streams a pulled region down the wire
/// with its own reserved handler and a caller-chosen transfer id.
pub(crate) fn send_chunks(
    rails: &[StripeRail],
    chunk_rsr: &Rsr,
    transfer_id: u64,
    body: &Bytes,
    shares: &[usize],
    seg_cap: usize,
) -> Result<()> {
    let n = rails.len().min(MAX_RAILS);
    let body_len = body.len();
    let total: usize = shares[..n]
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| s.div_ceil(seg_cap))
        .sum();
    debug_assert!(total <= MAX_CHUNKS);
    let mut failed = [false; MAX_RAILS];
    let mut offset = 0usize;
    let mut index = 0u16;
    let mut last_err = None;
    for (i, &share) in shares[..n].iter().enumerate() {
        let mut remaining = share;
        while remaining > 0 {
            let len = remaining.min(seg_cap);
            let meta = StripeMeta {
                transfer_id,
                index,
                total: total as u16,
                body_len: body_len as u32,
                offset: offset as u32,
            }
            .to_bytes();
            let tail = body.slice(offset..offset + len);
            let mut sent = false;
            for probe in 0..n {
                let r = (i + probe) % n;
                if failed[r] {
                    continue;
                }
                match rails[r].obj.send_parts(chunk_rsr, &meta, &tail) {
                    Ok(()) => {
                        sent = true;
                        break;
                    }
                    Err(e) => {
                        failed[r] = true;
                        last_err = Some(e);
                    }
                }
            }
            if !sent {
                return Err(last_err.expect("no rail failure recorded"));
            }
            offset += len;
            index += 1;
            remaining -= len;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// StripeAssembler (receive side)
// ---------------------------------------------------------------------------

struct Transfer {
    total: u16,
    body_len: u32,
    /// Receipt bitmap: bit `i` set once chunk `i` arrived (first wins).
    received: u64,
    /// Data bytes accumulated so far.
    filled: u32,
    /// Whole chunk payloads, index-keyed. Held whole (not sliced) so the
    /// pooled storage can be reclaimed after reassembly.
    slots: Vec<Option<Bytes>>,
    /// When the most recent chunk arrived; [`StripeAssembler::sweep_idle`]
    /// evicts transfers whose sender has gone quiet past a timeout.
    last_arrival: Instant,
}

#[derive(Default)]
struct AssemblerState {
    transfers: HashMap<u64, Transfer>,
    /// Transfer ids in arrival order (may contain ids already completed;
    /// eviction skips those).
    arrival: VecDeque<u64>,
    /// Recycled slot vectors, so steady-state ingest allocates nothing.
    free_slots: Vec<Vec<Option<Bytes>>>,
}

/// A fully received transfer, ready to be turned into a contiguous body
/// ([`StripeAssembler::assemble_body`]) or per-chunk parts
/// ([`StripeAssembler::take_parts`]).
pub struct CompleteTransfer {
    /// The transfer id the chunks carried.
    pub transfer_id: u64,
    body_len: u32,
    slots: Vec<Option<Bytes>>,
}

/// Reassembles chunk payloads into complete transfers.
///
/// Tolerates out-of-order arrival, duplicated chunks (RUDP retransmits —
/// first copy wins, duplicates are recycled), and any interleaving of
/// concurrent transfers. Retains at most [`MAX_CONCURRENT_TRANSFERS`]
/// incomplete transfers, evicting the oldest — which is also how the
/// half-delivered remains of a mid-transfer link death are eventually
/// collected.
#[derive(Default)]
pub struct StripeAssembler {
    inner: Mutex<AssemblerState>,
}

impl StripeAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one chunk payload (`StripeMeta ++ data`). Returns the
    /// completed transfer when this chunk was the last one missing.
    pub fn ingest(&self, payload: Bytes) -> Result<Option<CompleteTransfer>> {
        stripe_drain(&mut self.inner.lock(), payload)
    }

    /// Incomplete transfers currently buffered.
    pub fn pending(&self) -> usize {
        self.inner.lock().transfers.len()
    }

    /// Concatenates a stripe-mode transfer's data sections, in index
    /// order, into one pooled contiguous body. Validates that the chunk
    /// offsets tile `body_len` exactly (no gaps, no overlap) and recycles
    /// the chunk payload storage and the slot vector.
    pub fn assemble_body(&self, mut t: CompleteTransfer) -> Result<Bytes> {
        let run = |t: &mut CompleteTransfer| -> Result<Bytes> {
            if t.body_len == 0 {
                return Err(NexusError::Decode("slot-mode transfer has no body"));
            }
            let mut buf = pool::take(t.body_len as usize);
            let mut expect = 0u32;
            for slot in t.slots.iter_mut() {
                let payload = slot.take().ok_or(NexusError::Decode("missing chunk"))?;
                let meta = StripeMeta::parse(&payload)?;
                if meta.offset != expect {
                    pool::give(buf);
                    return Err(NexusError::Decode("stripe chunks leave a gap or overlap"));
                }
                buf.extend_from_slice(&payload[META_LEN..]);
                expect += (payload.len() - META_LEN) as u32;
                pool::reclaim(payload);
            }
            if expect != t.body_len {
                pool::give(buf);
                return Err(NexusError::Decode("stripe body length mismatch"));
            }
            Ok(buf.freeze())
        };
        let out = run(&mut t);
        self.give_slots(t.slots);
        out
    }

    /// Takes a slot-mode (gather) transfer apart: returns the shared
    /// application tag ([`StripeMeta::offset`] of chunk 0) and one data
    /// view per chunk, in index order.
    pub fn take_parts(&self, mut t: CompleteTransfer) -> Result<(u32, Vec<Bytes>)> {
        let mut parts = Vec::with_capacity(t.slots.len());
        let mut tag = 0u32;
        for (i, slot) in t.slots.iter_mut().enumerate() {
            let payload = slot.take().ok_or(NexusError::Decode("missing chunk"))?;
            if i == 0 {
                tag = StripeMeta::parse(&payload)?.offset;
            }
            parts.push(payload.slice(META_LEN..payload.len()));
        }
        self.give_slots(t.slots);
        Ok((tag, parts))
    }

    fn give_slots(&self, mut slots: Vec<Option<Bytes>>) {
        slots.clear();
        let mut state = self.inner.lock();
        if state.free_slots.len() < 8 {
            state.free_slots.push(slots);
        }
    }

    /// Evicts incomplete transfers whose most recent chunk arrived more
    /// than `max_idle` ago — the remains of a sender (or rail) that died
    /// mid-stream — recycling their slot storage. Returns the evicted
    /// transfers' identity and progress so the caller can surface trace
    /// events. Intended to be called from a periodic progress sweep, not
    /// the ingest path.
    pub fn sweep_idle(&self, max_idle: Duration) -> Vec<EvictedTransfer> {
        let now = Instant::now();
        let mut state = self.inner.lock();
        let stale: Vec<EvictedTransfer> = state
            .transfers
            .iter()
            .filter(|(_, t)| now.duration_since(t.last_arrival) >= max_idle)
            .map(|(&id, t)| EvictedTransfer {
                transfer_id: id,
                received: t.received.count_ones() as u16,
                total: t.total,
            })
            .collect();
        for ev in &stale {
            if let Some(t) = state.transfers.remove(&ev.transfer_id) {
                recycle(&mut state, t.slots);
            }
        }
        stale
    }
}

/// Identity and progress of a transfer evicted by
/// [`StripeAssembler::sweep_idle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedTransfer {
    /// The transfer id the chunks carried.
    pub transfer_id: u64,
    /// Chunks that had arrived before the eviction.
    pub received: u16,
    /// Chunks the transfer was waiting for.
    pub total: u16,
}

/// The assembler ingest path (a registered `hot-path-alloc` and
/// `poll-blocking` lint root): validates one chunk against its transfer,
/// files it, and extracts the transfer once every chunk has arrived.
fn stripe_drain(state: &mut AssemblerState, payload: Bytes) -> Result<Option<CompleteTransfer>> {
    let meta = StripeMeta::parse(&payload)?;
    if meta.total == 0 || meta.total as usize > MAX_CHUNKS {
        return Err(NexusError::Decode("stripe chunk count out of range"));
    }
    if meta.index >= meta.total {
        return Err(NexusError::Decode("stripe chunk index out of range"));
    }
    let data_len = (payload.len() - META_LEN) as u32;
    if meta.body_len > 0 {
        match meta.offset.checked_add(data_len) {
            Some(end) if end <= meta.body_len => {}
            _ => return Err(NexusError::Decode("stripe chunk exceeds body length")),
        }
    }
    // Lazily drop arrival-order entries for transfers that already
    // completed (or were evicted), so the deque stays bounded by the
    // pending set instead of growing one entry per transfer forever.
    while let Some(front) = state.arrival.front() {
        if state.transfers.contains_key(front) {
            break;
        }
        state.arrival.pop_front();
    }
    if !state.transfers.contains_key(&meta.transfer_id) {
        // New transfer: evict the oldest incomplete one if at capacity.
        while state.transfers.len() >= MAX_CONCURRENT_TRANSFERS {
            let Some(old) = state.arrival.pop_front() else {
                break;
            };
            if let Some(t) = state.transfers.remove(&old) {
                recycle(state, t.slots);
            }
        }
        let mut slots = state.free_slots.pop().unwrap_or_default();
        slots.resize(meta.total as usize, None);
        state.arrival.push_back(meta.transfer_id);
        state.transfers.insert(
            meta.transfer_id,
            Transfer {
                total: meta.total,
                body_len: meta.body_len,
                received: 0,
                filled: 0,
                slots,
                last_arrival: Instant::now(),
            },
        );
    }
    let t = state
        .transfers
        .get_mut(&meta.transfer_id)
        .expect("transfer just ensured");
    if t.total != meta.total || t.body_len != meta.body_len {
        return Err(NexusError::Decode("stripe chunk metadata mismatch"));
    }
    let bit = 1u64 << meta.index;
    if t.received & bit != 0 {
        // Duplicate (e.g. an RUDP retransmit raced its ack): first wins.
        pool::reclaim(payload);
        return Ok(None);
    }
    if t.body_len > 0 && t.filled + data_len > t.body_len {
        let t = state.transfers.remove(&meta.transfer_id).expect("present");
        recycle(state, t.slots);
        return Err(NexusError::Decode("stripe transfer overflows its body"));
    }
    t.received |= bit;
    t.filled += data_len;
    t.slots[meta.index as usize] = Some(payload);
    t.last_arrival = Instant::now();
    let complete = meta.total as u32 == t.received.count_ones();
    if !complete {
        return Ok(None);
    }
    let t = state.transfers.remove(&meta.transfer_id).expect("present");
    Ok(Some(CompleteTransfer {
        transfer_id: meta.transfer_id,
        body_len: t.body_len,
        slots: t.slots,
    }))
}

/// Returns an evicted/failed transfer's resources: payload storage to the
/// buffer pool, the slot vector to the free list.
fn recycle(state: &mut AssemblerState, mut slots: Vec<Option<Bytes>>) {
    for slot in slots.iter_mut() {
        if let Some(payload) = slot.take() {
            pool::reclaim(payload);
        }
    }
    slots.clear();
    if state.free_slots.len() < 8 {
        state.free_slots.push(slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextId;
    use crate::endpoint::EndpointId;
    use crate::module::send_parts_fallback;

    // -- weighted_shares ----------------------------------------------------

    fn shares_of(total: usize, rates: &[f64], min_chunk: usize) -> (Vec<usize>, usize) {
        let mut shares = vec![0usize; rates.len()];
        let n = weighted_shares(total, rates, min_chunk, &mut shares);
        (shares, n)
    }

    #[test]
    fn shares_split_evenly_when_unmeasured() {
        let (s, n) = shares_of(4096, &[f64::NAN, f64::NAN, f64::NAN, f64::NAN], 64);
        assert_eq!(n, 4);
        assert_eq!(s.iter().sum::<usize>(), 4096);
        assert_eq!(s, vec![1024, 1024, 1024, 1024]);
    }

    #[test]
    fn shares_follow_rates() {
        let (s, n) = shares_of(4000, &[3.0, 1.0], 64);
        assert_eq!(n, 2);
        assert_eq!(s.iter().sum::<usize>(), 4000);
        assert_eq!(s, vec![3000, 1000]);
    }

    #[test]
    fn unmeasured_rail_gets_mean_measured_rate() {
        let (s, _) = shares_of(3000, &[2.0, f64::NAN, 4.0], 64);
        // NaN rail weighted at mean(2,4)=3 → weights 2:3:4.
        assert_eq!(s.iter().sum::<usize>(), 3000);
        assert!(s[2] > s[1] && s[1] > s[0], "{s:?}");
    }

    #[test]
    fn tiny_shares_fold_into_fastest_rail() {
        let (s, n) = shares_of(1500, &[1.0, 1.0], 1024);
        assert_eq!(n, 1);
        assert_eq!(s.iter().sum::<usize>(), 1500);
        // 750/750 both below min_chunk: everything lands on one rail.
        assert!(s.contains(&1500), "{s:?}");
    }

    #[test]
    fn remainder_goes_to_fastest() {
        let (s, _) = shares_of(1001, &[1.0, 1.0, 1.0], 1);
        assert_eq!(s.iter().sum::<usize>(), 1001);
        assert_eq!(*s.iter().max().unwrap(), 335);
    }

    #[test]
    fn shares_always_sum_to_total() {
        for total in [0usize, 1, 7, 1023, 65537] {
            for rates in [
                vec![1.0],
                vec![0.5, 2.5],
                vec![f64::NAN, 1.0, 0.0, 9.0],
                vec![f64::INFINITY, 1.0],
            ] {
                let (s, _) = shares_of(total, &rates, 128);
                assert_eq!(s.iter().sum::<usize>(), total, "{total} over {rates:?}");
            }
        }
    }

    // -- meta ---------------------------------------------------------------

    #[test]
    fn meta_roundtrip() {
        let m = StripeMeta {
            transfer_id: 0xDEAD_BEEF_0BAD_F00D,
            index: 3,
            total: 7,
            body_len: 1 << 20,
            offset: 12345,
        };
        assert_eq!(StripeMeta::parse(&m.to_bytes()).unwrap(), m);
        assert!(StripeMeta::parse(&m.to_bytes()[..META_LEN - 1]).is_err());
    }

    // -- assembler ----------------------------------------------------------

    fn chunk(meta: StripeMeta, data: &[u8]) -> Bytes {
        let mut v = meta.to_bytes().to_vec();
        v.extend_from_slice(data);
        Bytes::from(v)
    }

    fn stripe_chunks(id: u64, body: &[u8], cuts: &[usize]) -> Vec<Bytes> {
        let mut out = Vec::new();
        let mut off = 0usize;
        for (i, &len) in cuts.iter().enumerate() {
            out.push(chunk(
                StripeMeta {
                    transfer_id: id,
                    index: i as u16,
                    total: cuts.len() as u16,
                    body_len: body.len() as u32,
                    offset: off as u32,
                },
                &body[off..off + len],
            ));
            off += len;
        }
        assert_eq!(off, body.len());
        out
    }

    #[test]
    fn in_order_reassembly() {
        let asm = StripeAssembler::new();
        let body: Vec<u8> = (0..200u8).collect();
        let chunks = stripe_chunks(1, &body, &[50, 100, 50]);
        assert!(asm.ingest(chunks[0].clone()).unwrap().is_none());
        assert!(asm.ingest(chunks[1].clone()).unwrap().is_none());
        let done = asm.ingest(chunks[2].clone()).unwrap().unwrap();
        assert_eq!(done.transfer_id, 1);
        assert_eq!(&asm.assemble_body(done).unwrap()[..], &body[..]);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let asm = StripeAssembler::new();
        let body: Vec<u8> = (0..=255u8).cycle().take(999).collect();
        let chunks = stripe_chunks(2, &body, &[333, 333, 333]);
        assert!(asm.ingest(chunks[2].clone()).unwrap().is_none());
        assert!(asm.ingest(chunks[0].clone()).unwrap().is_none());
        let done = asm.ingest(chunks[1].clone()).unwrap().unwrap();
        assert_eq!(&asm.assemble_body(done).unwrap()[..], &body[..]);
    }

    #[test]
    fn duplicates_are_dropped_first_wins() {
        let asm = StripeAssembler::new();
        let body = vec![7u8; 100];
        let chunks = stripe_chunks(3, &body, &[60, 40]);
        assert!(asm.ingest(chunks[0].clone()).unwrap().is_none());
        // Retransmit of chunk 0: ignored, transfer still incomplete.
        assert!(asm.ingest(chunks[0].clone()).unwrap().is_none());
        let done = asm.ingest(chunks[1].clone()).unwrap().unwrap();
        assert_eq!(&asm.assemble_body(done).unwrap()[..], &body[..]);
    }

    #[test]
    fn interleaved_transfers_reassemble_independently() {
        let asm = StripeAssembler::new();
        let a: Vec<u8> = vec![1u8; 300];
        let b: Vec<u8> = vec![2u8; 500];
        let ca = stripe_chunks(10, &a, &[100, 200]);
        let cb = stripe_chunks(11, &b, &[250, 250]);
        assert!(asm.ingest(ca[0].clone()).unwrap().is_none());
        assert!(asm.ingest(cb[1].clone()).unwrap().is_none());
        assert!(asm.ingest(cb[0].clone()).unwrap().is_some());
        let done_a = asm.ingest(ca[1].clone()).unwrap().unwrap();
        assert_eq!(&asm.assemble_body(done_a).unwrap()[..], &a[..]);
    }

    #[test]
    fn malformed_chunks_rejected() {
        let asm = StripeAssembler::new();
        let meta = |total, index, body_len, offset| StripeMeta {
            transfer_id: 9,
            index,
            total,
            body_len,
            offset,
        };
        // Zero / oversized chunk count.
        assert!(asm.ingest(chunk(meta(0, 0, 10, 0), b"x")).is_err());
        assert!(asm.ingest(chunk(meta(65, 0, 10, 0), b"x")).is_err());
        // Index out of range.
        assert!(asm.ingest(chunk(meta(2, 2, 10, 0), b"x")).is_err());
        // Data past the declared body.
        assert!(asm.ingest(chunk(meta(2, 0, 4, 2), b"xyz")).is_err());
        // Metadata mismatch against the existing transfer.
        assert!(asm
            .ingest(chunk(meta(3, 0, 30, 0), b"0123456789"))
            .unwrap()
            .is_none());
        assert!(asm
            .ingest(chunk(meta(3, 1, 99, 10), b"0123456789"))
            .is_err());
    }

    #[test]
    fn gap_detected_at_assembly() {
        let asm = StripeAssembler::new();
        // Two chunks both claiming offset 0 of a 20-byte body.
        let c0 = chunk(
            StripeMeta {
                transfer_id: 4,
                index: 0,
                total: 2,
                body_len: 20,
                offset: 0,
            },
            &[0u8; 10],
        );
        let c1 = chunk(
            StripeMeta {
                transfer_id: 4,
                index: 1,
                total: 2,
                body_len: 20,
                offset: 0,
            },
            &[1u8; 10],
        );
        asm.ingest(c0).unwrap();
        let done = asm.ingest(c1).unwrap().unwrap();
        assert!(asm.assemble_body(done).is_err());
    }

    #[test]
    fn oldest_incomplete_transfer_evicted_at_capacity() {
        let asm = StripeAssembler::new();
        for id in 0..MAX_CONCURRENT_TRANSFERS as u64 + 1 {
            let c = chunk(
                StripeMeta {
                    transfer_id: id,
                    index: 0,
                    total: 2,
                    body_len: 8,
                    offset: 0,
                },
                &[0u8; 4],
            );
            asm.ingest(c).unwrap();
        }
        assert_eq!(asm.pending(), MAX_CONCURRENT_TRANSFERS);
        // Transfer 0 was evicted: completing it now treats its second
        // chunk as a fresh (incomplete) transfer.
        let c = chunk(
            StripeMeta {
                transfer_id: 0,
                index: 1,
                total: 2,
                body_len: 8,
                offset: 4,
            },
            &[0u8; 4],
        );
        assert!(asm.ingest(c).unwrap().is_none());
    }

    #[test]
    fn idle_transfer_swept_after_sender_death() {
        let asm = StripeAssembler::new();
        let body: Vec<u8> = (0..200u8).collect();
        let chunks = stripe_chunks(21, &body, &[50, 100, 50]);
        // The sender dies after two of three chunks.
        asm.ingest(chunks[0].clone()).unwrap();
        asm.ingest(chunks[1].clone()).unwrap();
        assert_eq!(asm.pending(), 1);
        // A generous timeout leaves the live-looking transfer alone.
        assert!(asm.sweep_idle(Duration::from_secs(3600)).is_empty());
        assert_eq!(asm.pending(), 1);
        // A zero timeout treats it as idle: slots reclaimed, id reported.
        let evicted = asm.sweep_idle(Duration::ZERO);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].transfer_id, 21);
        assert_eq!(evicted[0].received, 2);
        assert_eq!(evicted[0].total, 3);
        assert_eq!(asm.pending(), 0);
        // The late final chunk now starts a fresh (incomplete) transfer
        // instead of resurrecting freed slots.
        assert!(asm.ingest(chunks[2].clone()).unwrap().is_none());
    }

    #[test]
    fn sweep_spares_complete_and_fresh_transfers() {
        let asm = StripeAssembler::new();
        let body = vec![5u8; 64];
        let done = stripe_chunks(30, &body, &[64]);
        let t = asm.ingest(done[0].clone()).unwrap().unwrap();
        assert_eq!(&asm.assemble_body(t).unwrap()[..], &body[..]);
        // Completed transfers are gone already; nothing for the sweep.
        assert!(asm.sweep_idle(Duration::ZERO).is_empty());
    }

    #[test]
    fn slot_mode_returns_parts_and_tag() {
        let asm = StripeAssembler::new();
        let meta = |index, offset| StripeMeta {
            transfer_id: 77,
            index,
            total: 3,
            body_len: 0,
            offset,
        };
        asm.ingest(chunk(meta(2, 5), b"cc")).unwrap();
        asm.ingest(chunk(meta(0, 5), b"a")).unwrap();
        let done = asm.ingest(chunk(meta(1, 5), b"bb")).unwrap().unwrap();
        let (tag, parts) = asm.take_parts(done).unwrap();
        assert_eq!(tag, 5);
        assert_eq!(parts.len(), 3);
        assert_eq!(&parts[0][..], b"a");
        assert_eq!(&parts[1][..], b"bb");
        assert_eq!(&parts[2][..], b"cc");
    }

    // -- StripedObject ------------------------------------------------------

    /// A rail that captures combined chunk payloads, optionally failing.
    struct CaptureRail {
        sent: Mutex<Vec<(String, Bytes)>>,
        broken: std::sync::atomic::AtomicBool,
    }

    impl CaptureRail {
        fn new() -> Arc<Self> {
            Arc::new(CaptureRail {
                sent: Mutex::new(Vec::new()),
                broken: std::sync::atomic::AtomicBool::new(false),
            })
        }
    }

    impl CommObject for CaptureRail {
        fn method(&self) -> MethodId {
            MethodId::FIRST_CUSTOM
        }
        fn send(&self, rsr: &Rsr, _frame: &WireFrame) -> Result<()> {
            if self.broken.load(Ordering::Relaxed) {
                return Err(NexusError::ConnectionClosed);
            }
            self.sent
                .lock()
                .push((rsr.handler.as_str().to_owned(), rsr.payload.clone()));
            Ok(())
        }
    }

    fn rails(objs: &[Arc<CaptureRail>]) -> Vec<StripeRail> {
        objs.iter()
            .map(|o| StripeRail::new(o.clone() as Arc<dyn CommObject>))
            .collect()
    }

    fn bulk_rsr(len: usize) -> Rsr {
        Rsr::new(
            ContextId(1),
            EndpointId(2),
            "bulk",
            Bytes::from((0..len).map(|i| i as u8).collect::<Vec<u8>>()),
        )
    }

    #[test]
    fn small_bodies_bypass_striping() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        let striped = StripedObject::new(rails(&r));
        let rsr = bulk_rsr(64);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        let sent = r[0].sent.lock();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, "bulk", "cutoff bypass must keep the wire format");
        assert!(r[1].sent.lock().is_empty());
    }

    #[test]
    fn large_bodies_stripe_and_reassemble() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        let striped = StripedObject::new(rails(&r)).with_min_chunk(512);
        let rsr = bulk_rsr(64 * 1024);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        let asm = StripeAssembler::new();
        let mut done = None;
        for rail in &r {
            for (handler, payload) in rail.sent.lock().iter() {
                assert_eq!(handler, STRIPE_HANDLER);
                if let Some(t) = asm.ingest(payload.clone()).unwrap() {
                    done = Some(t);
                }
            }
        }
        let body = asm
            .assemble_body(done.expect("transfer completes"))
            .unwrap();
        assert_eq!(&body[..], &frame.body(&rsr)[..]);
        // Both rails carried data.
        assert!(!r[0].sent.lock().is_empty() && !r[1].sent.lock().is_empty());
    }

    #[test]
    fn failed_rail_chunks_retry_on_survivors() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        r[1].broken.store(true, Ordering::Relaxed);
        let striped = StripedObject::new(rails(&r)).with_min_chunk(512);
        let rsr = bulk_rsr(64 * 1024);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        // Every chunk landed on rail 0; the transfer still reassembles.
        let asm = StripeAssembler::new();
        let mut done = None;
        for (_, payload) in r[0].sent.lock().iter() {
            if let Some(t) = asm.ingest(payload.clone()).unwrap() {
                done = Some(t);
            }
        }
        let body = asm
            .assemble_body(done.expect("completes over one rail"))
            .unwrap();
        assert_eq!(&body[..], &frame.body(&rsr)[..]);
    }

    #[test]
    fn all_rails_dead_propagates_error() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        r[0].broken.store(true, Ordering::Relaxed);
        r[1].broken.store(true, Ordering::Relaxed);
        let striped = StripedObject::new(rails(&r)).with_min_chunk(512);
        let rsr = bulk_rsr(64 * 1024);
        let frame = WireFrame::new();
        assert!(striped.send(&rsr, &frame).is_err());
    }

    #[test]
    fn multi_mib_shares_split_into_pool_friendly_segments() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        let striped = StripedObject::new(rails(&r));
        let rsr = bulk_rsr(4 * 1024 * 1024);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        let asm = StripeAssembler::new();
        let mut done = None;
        let mut chunks = 0usize;
        for rail in &r {
            for (_, payload) in rail.sent.lock().iter() {
                chunks += 1;
                assert!(
                    payload.len() <= META_LEN + MAX_CHUNK_PAYLOAD,
                    "chunk combine of {} bytes outgrows the pool cap",
                    payload.len()
                );
                if let Some(t) = asm.ingest(payload.clone()).unwrap() {
                    done = Some(t);
                }
            }
        }
        assert!(
            chunks >= 8,
            "4 MiB over 2 rails must split into >= 8 segments, got {chunks}"
        );
        let body = asm
            .assemble_body(done.expect("transfer completes"))
            .unwrap();
        assert_eq!(&body[..], &frame.body(&rsr)[..]);
    }

    #[test]
    fn oversized_bodies_grow_segments_to_fit_the_chunk_bitmap() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        let striped = StripedObject::new(rails(&r));
        // 40 MiB would need 80 segments at MAX_CHUNK_PAYLOAD; the cap
        // must grow so the total stays within the u64 receipt bitmap.
        let rsr = bulk_rsr(40 * 1024 * 1024);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        let asm = StripeAssembler::new();
        let mut done = None;
        let mut chunks = 0usize;
        for rail in &r {
            for (_, payload) in rail.sent.lock().iter() {
                chunks += 1;
                if let Some(t) = asm.ingest(payload.clone()).unwrap() {
                    done = Some(t);
                }
            }
        }
        assert!(chunks <= MAX_CHUNKS, "{chunks} chunks overflow the bitmap");
        let body = asm
            .assemble_body(done.expect("transfer completes"))
            .unwrap();
        assert_eq!(&body[..], &frame.body(&rsr)[..]);
    }

    #[test]
    fn weight_overrides_skew_the_split() {
        let r = [CaptureRail::new(), CaptureRail::new()];
        let mut rls = rails(&r);
        rls[0].weight = Some(3.0);
        rls[1].weight = Some(1.0);
        let striped = StripedObject::new(rls).with_min_chunk(512);
        let rsr = bulk_rsr(64 * 1024);
        let frame = WireFrame::new();
        striped.send(&rsr, &frame).unwrap();
        let bytes_on = |rail: &CaptureRail| {
            rail.sent
                .lock()
                .iter()
                .map(|(_, p)| p.len() - META_LEN)
                .sum::<usize>()
        };
        let (b0, b1) = (bytes_on(&r[0]), bytes_on(&r[1]));
        assert!(
            b0 > 2 * b1,
            "3:1 weights should skew the split: {b0} vs {b1}"
        );
    }

    #[test]
    fn stripe_set_param_validates() {
        let striped = StripedObject::new(rails(&[CaptureRail::new()]));
        striped.set_param("cutoff", "128").unwrap();
        striped.set_param("min_chunk", "256").unwrap();
        assert!(striped.set_param("cutoff", "junk").is_err());
        assert!(striped.set_param("bogus", "1").is_err());
    }

    #[test]
    fn send_parts_fallback_matches_concatenation() {
        let rail = CaptureRail::new();
        let rsr = Rsr::new(ContextId(1), EndpointId(2), "#stripe", Bytes::new());
        let tail = Bytes::from(vec![9u8; 32]);
        send_parts_fallback(&*rail, &rsr, b"HEAD", &tail).unwrap();
        let sent = rail.sent.lock();
        assert_eq!(sent.len(), 1);
        assert_eq!(&sent[0].1[..4], b"HEAD");
        assert_eq!(&sent[0].1[4..], &tail[..]);
    }
}
