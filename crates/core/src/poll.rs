//! Unified polling across communication methods.
//!
//! Incoming RSRs must be detected across *all* methods a context has
//! enabled (§3.3). The straightforward design — iterate every method's
//! receiver on each poll — makes an infrequently used, expensive method
//! (TCP `select`, >100 µs) tax a frequently used, cheap one (MPL probe,
//! ~15 µs). The paper's remedy is the **`skip_poll`** parameter: a method
//! with `skip_poll = k` is checked only every `k`-th invocation of the
//! unified polling function. A second remedy, for systems that allow a
//! thread to block awaiting communication, is a dedicated blocking thread
//! per method ([`BlockingPoller`]).

use crate::descriptor::MethodId;
use crate::error::Result;
use crate::module::CommReceiver;
use crate::rsr::Rsr;
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Parameters of the adaptive skip_poll controller (the paper's "future
/// work": *adaptive adjustment of skip_poll values*).
///
/// The controller is multiplicative-decrease / multiplicative-increase on
/// evidence: finding a message halves the skip (the method is active —
/// look often), while `grow_after` consecutive empty probes double it
/// (the method is quiet — stop paying for it), clamped to `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSkipPoll {
    /// Lower bound on the skip value (1 = may poll every pass).
    pub min: u64,
    /// Upper bound on the skip value.
    pub max: u64,
    /// Consecutive empty probes before the skip doubles.
    pub grow_after: u64,
}

impl Default for AdaptiveSkipPoll {
    fn default() -> Self {
        AdaptiveSkipPoll {
            min: 1,
            max: 4096,
            grow_after: 8,
        }
    }
}

/// One method's receive source within the poll rotation.
struct PollSource {
    method: MethodId,
    receiver: Box<dyn CommReceiver>,
    /// Poll this source every `skip`-th call (1 = every call).
    skip: u64,
    /// Calls since the last actual poll of this source.
    since_last: u64,
    /// Adaptive controller, if enabled for this source.
    adaptive: Option<AdaptiveSkipPoll>,
    /// Consecutive empty probes (drives adaptive growth).
    empty_streak: u64,
}

/// The unified poll engine for one context.
///
/// Not thread-safe by itself; the owning context serializes access.
#[derive(Default)]
pub struct PollEngine {
    sources: Vec<PollSource>,
    /// Total invocations of [`PollEngine::poll_once`].
    calls: u64,
}

/// Result of one pass of the unified polling function.
#[derive(Debug, Default)]
pub struct PollOutcome {
    /// Messages retrieved this pass, tagged with the method that carried
    /// them.
    pub messages: Vec<(MethodId, Rsr)>,
    /// Methods actually probed this pass (after skip_poll filtering), and
    /// whether each probe found a message.
    pub probed: Vec<(MethodId, bool)>,
}

impl PollEngine {
    /// Creates an engine with no sources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a receive source for `method` (at skip_poll = 1).
    pub fn add_source(&mut self, method: MethodId, receiver: Box<dyn CommReceiver>) {
        self.sources.push(PollSource {
            method,
            receiver,
            skip: 1,
            since_last: 0,
            adaptive: None,
            empty_streak: 0,
        });
    }

    /// Removes and returns the receiver for `method` (used when moving a
    /// method to a blocking poller thread).
    pub fn remove_source(&mut self, method: MethodId) -> Option<Box<dyn CommReceiver>> {
        let idx = self.sources.iter().position(|s| s.method == method)?;
        Some(self.sources.remove(idx).receiver)
    }

    /// Sets the skip_poll value for `method`. A value of `k` means the
    /// method is checked on every `k`-th call of the polling function;
    /// `1` restores per-call checking. Values of 0 are treated as 1.
    /// Disables adaptive control for the method. Returns whether the
    /// method had a source.
    pub fn set_skip_poll(&mut self, method: MethodId, k: u64) -> bool {
        match self.sources.iter_mut().find(|s| s.method == method) {
            Some(s) => {
                s.skip = k.max(1);
                s.since_last = 0;
                s.adaptive = None;
                s.empty_streak = 0;
                true
            }
            None => false,
        }
    }

    /// Enables adaptive skip_poll control for `method` (starting from its
    /// current skip value, clamped into the configured range). Returns
    /// whether the method had a source.
    pub fn set_adaptive(&mut self, method: MethodId, cfg: AdaptiveSkipPoll) -> bool {
        match self.sources.iter_mut().find(|s| s.method == method) {
            Some(s) => {
                s.skip = s.skip.clamp(cfg.min.max(1), cfg.max.max(1));
                s.adaptive = Some(cfg);
                s.empty_streak = 0;
                true
            }
            None => false,
        }
    }

    /// Current skip_poll value for `method`.
    pub fn skip_poll(&self, method: MethodId) -> Option<u64> {
        self.sources
            .iter()
            .find(|s| s.method == method)
            .map(|s| s.skip)
    }

    /// The methods with receive sources, in rotation order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.sources.iter().map(|s| s.method).collect()
    }

    /// Runs one pass of the unified polling function: each source whose
    /// skip counter has elapsed is probed once. Transport errors from one
    /// source do not prevent probing the others; the first error is
    /// returned after the full pass.
    pub fn poll_once(&mut self) -> Result<PollOutcome> {
        self.calls += 1;
        let mut out = PollOutcome::default();
        let mut first_err = None;
        for s in &mut self.sources {
            s.since_last += 1;
            if s.since_last < s.skip {
                continue;
            }
            s.since_last = 0;
            match s.receiver.poll() {
                Ok(Some(msg)) => {
                    out.probed.push((s.method, true));
                    out.messages.push((s.method, msg));
                    if let Some(cfg) = s.adaptive {
                        // Activity: look more often.
                        s.empty_streak = 0;
                        s.skip = (s.skip / 2).max(cfg.min.max(1));
                    }
                }
                Ok(None) => {
                    out.probed.push((s.method, false));
                    if let Some(cfg) = s.adaptive {
                        s.empty_streak += 1;
                        if s.empty_streak >= cfg.grow_after {
                            // Sustained silence: back off.
                            s.empty_streak = 0;
                            s.skip = (s.skip * 2).clamp(cfg.min.max(1), cfg.max.max(1));
                        }
                    }
                }
                Err(e) => {
                    out.probed.push((s.method, false));
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Total calls to [`PollEngine::poll_once`] so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Closes all receivers.
    pub fn close_all(&mut self) {
        for s in &mut self.sources {
            s.receiver.close();
        }
        self.sources.clear();
    }
}

/// A dedicated blocking receive thread for one method.
///
/// On systems where a method supports blocking receives, a specialized
/// polling function can run in its own thread of control and block, so the
/// method never appears in the poll rotation at all. Retrieved messages are
/// parked in a lock-free queue that the context drains during `progress`.
pub struct BlockingPoller {
    method: MethodId,
    queue: Arc<SegQueue<Rsr>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl BlockingPoller {
    /// Spawns a thread that blocks on `receiver` (with `timeout` as the
    /// shutdown-check granularity) and enqueues everything it receives.
    pub fn spawn(
        method: MethodId,
        mut receiver: Box<dyn CommReceiver>,
        timeout: Duration,
    ) -> Self {
        let queue = Arc::new(SegQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let q = Arc::clone(&queue);
        let st = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("nexus-blocking-poll-{method}"))
            .spawn(move || {
                while !st.load(Ordering::Relaxed) {
                    match receiver.recv_timeout(timeout) {
                        Ok(Some(msg)) => q.push(msg),
                        Ok(None) => {}
                        Err(_) => {
                            // Transport error: back off briefly rather than
                            // spinning; shutdown flag still honored.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
                receiver.close();
            })
            .expect("spawn blocking poller");
        BlockingPoller {
            method,
            queue,
            stop,
            handle: Some(handle),
        }
    }

    /// The method this poller serves.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Takes one message received by the blocking thread, if any.
    pub fn try_pop(&self) -> Option<Rsr> {
        self.queue.pop()
    }

    /// Signals the thread to stop and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BlockingPoller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextId;
    use crate::endpoint::EndpointId;
    use bytes::Bytes;
    use parking_lot::Mutex;

    /// A scripted receiver: pops from a shared vec on each poll.
    struct Scripted {
        inbox: Arc<Mutex<Vec<Rsr>>>,
        polls: Arc<Mutex<u64>>,
    }

    impl CommReceiver for Scripted {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            *self.polls.lock() += 1;
            Ok(self.inbox.lock().pop())
        }
        fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Rsr>> {
            let deadline = std::time::Instant::now() + timeout;
            loop {
                if let Some(m) = self.inbox.lock().pop() {
                    *self.polls.lock() += 1;
                    return Ok(Some(m));
                }
                if std::time::Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    type Inbox = Arc<Mutex<Vec<Rsr>>>;
    type PollCount = Arc<Mutex<u64>>;

    fn scripted() -> (Scripted, Inbox, PollCount) {
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let polls = Arc::new(Mutex::new(0));
        (
            Scripted {
                inbox: Arc::clone(&inbox),
                polls: Arc::clone(&polls),
            },
            inbox,
            polls,
        )
    }

    fn msg(h: &str) -> Rsr {
        Rsr::new(ContextId(0), EndpointId(0), h, Bytes::new())
    }

    #[test]
    fn poll_rotates_all_sources_by_default() {
        let mut eng = PollEngine::new();
        let (r1, in1, _) = scripted();
        let (r2, in2, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r1));
        eng.add_source(MethodId::TCP, Box::new(r2));
        in1.lock().push(msg("a"));
        in2.lock().push(msg("b"));
        let out = eng.poll_once().unwrap();
        assert_eq!(out.messages.len(), 2);
        assert_eq!(out.probed.len(), 2);
    }

    #[test]
    fn skip_poll_reduces_probe_frequency() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        let (r2, _, p2) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r1));
        eng.add_source(MethodId::TCP, Box::new(r2));
        assert!(eng.set_skip_poll(MethodId::TCP, 5));
        for _ in 0..20 {
            eng.poll_once().unwrap();
        }
        assert_eq!(*p1.lock(), 20, "cheap method polled every time");
        assert_eq!(*p2.lock(), 4, "expensive method polled every 5th time");
    }

    #[test]
    fn skip_poll_one_means_every_call_and_zero_is_clamped() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r1));
        eng.set_skip_poll(MethodId::TCP, 0);
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(1));
        for _ in 0..3 {
            eng.poll_once().unwrap();
        }
        assert_eq!(*p1.lock(), 3);
        assert!(!eng.set_skip_poll(MethodId::UDP, 2));
    }

    #[test]
    fn messages_still_arrive_with_skip_poll_just_later() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_skip_poll(MethodId::TCP, 3);
        inbox.lock().push(msg("late"));
        let mut got_at = None;
        for i in 1..=6 {
            let out = eng.poll_once().unwrap();
            if !out.messages.is_empty() {
                got_at = Some(i);
                break;
            }
        }
        assert_eq!(got_at, Some(3));
    }

    #[test]
    fn remove_source_stops_polling_it() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r1));
        let taken = eng.remove_source(MethodId::TCP);
        assert!(taken.is_some());
        eng.poll_once().unwrap();
        assert_eq!(*p1.lock(), 0);
        assert!(eng.remove_source(MethodId::TCP).is_none());
    }

    #[test]
    fn adaptive_skip_grows_while_silent() {
        let mut eng = PollEngine::new();
        let (r, _, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 64,
                grow_after: 4,
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(1));
        // 4 empty probes -> skip 2; 4 more -> 4; ... capped at 64.
        for _ in 0..1000 {
            eng.poll_once().unwrap();
        }
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(64), "capped at max");
    }

    #[test]
    fn adaptive_skip_falls_on_traffic() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_skip_poll(MethodId::TCP, 32);
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 64,
                grow_after: 1_000_000,
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(32));
        // Each delivered message halves the skip: 32 -> 16 -> 8 -> 4.
        for expect in [16u64, 8, 4] {
            inbox.lock().push(msg("m"));
            loop {
                let out = eng.poll_once().unwrap();
                if !out.messages.is_empty() {
                    break;
                }
            }
            assert_eq!(eng.skip_poll(MethodId::TCP), Some(expect));
        }
    }

    #[test]
    fn adaptive_respects_min_bound_and_manual_reset() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 4,
                max: 64,
                grow_after: 2,
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(4), "clamped up to min");
        inbox.lock().push(msg("m"));
        loop {
            if !eng.poll_once().unwrap().messages.is_empty() {
                break;
            }
        }
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(4), "min bound holds");
        // Manual set_skip_poll disables adaptation.
        eng.set_skip_poll(MethodId::TCP, 7);
        for _ in 0..100 {
            eng.poll_once().unwrap();
        }
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(7), "no drift after manual set");
    }

    #[test]
    fn blocking_poller_delivers_and_stops() {
        let (r, inbox, _) = scripted();
        let poller = BlockingPoller::spawn(
            MethodId::TCP,
            Box::new(r),
            Duration::from_millis(5),
        );
        inbox.lock().push(msg("x"));
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = poller.try_pop() {
                got = Some(m);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.expect("message should arrive").handler, "x");
        poller.stop();
    }

    #[test]
    fn poll_outcome_records_empty_probes() {
        let mut eng = PollEngine::new();
        let (r, _, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r));
        let out = eng.poll_once().unwrap();
        assert_eq!(out.probed, vec![(MethodId::MPL, false)]);
        assert!(out.messages.is_empty());
    }
}
