//! Unified polling across communication methods.
//!
//! Incoming RSRs must be detected across *all* methods a context has
//! enabled (§3.3). The straightforward design — iterate every method's
//! receiver on each poll — makes an infrequently used, expensive method
//! (TCP `select`, >100 µs) tax a frequently used, cheap one (MPL probe,
//! ~15 µs), and makes every pass cost O(sources) even when nothing is
//! arriving. The engine therefore runs two tiers:
//!
//! * **Readiness tier** — a transport that can tell when data arrives
//!   (in-process queues ring on enqueue; fd transports ring from a pump
//!   thread) is *armed* with a [`ReadySignal`] doorbell and leaves the
//!   rotation entirely. A pass then visits only rung sources, so idle
//!   sources cost nothing (see [`ReadySignal`] for the no-missed-wakeup
//!   protocol).
//! * **Polled tier** — genuinely unpollable methods (the MPL probe, the
//!   delay queue) stay in the rotation under the paper's **`skip_poll`**
//!   parameter: a method with `skip_poll = k` is checked only every
//!   `k`-th invocation of the unified polling function, adaptively tuned
//!   by [`AdaptiveSkipPoll`]. A second remedy, for systems that allow a
//!   thread to block awaiting communication, is a dedicated blocking
//!   thread per method ([`BlockingPoller`]).

use crate::descriptor::MethodId;
use crate::error::NexusError;
use crate::module::CommReceiver;
use crate::rsr::Rsr;
use crate::stats::{MethodCounters, Stats};
use crate::trace::{MethodTrace, Trace, TraceEventKind};
// Re-exported so external drivers of the doorbell protocol (transports,
// the xtask model checker) can build a ready list without depending on
// crossbeam directly.
pub use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Parameters of the adaptive skip_poll controller (the paper's "future
/// work": *adaptive adjustment of skip_poll values*).
///
/// The controller is two-layered:
///
/// * A **reactive** layer — multiplicative-decrease / multiplicative-
///   increase on evidence: finding a message halves the skip (the method
///   is active — look often), while `grow_after` consecutive empty probes
///   double it (the method is quiet — stop paying for it), clamped to
///   `[min, max]`. This layer reacts within one probe to bursts starting
///   or traffic evaporating.
/// * A **cost-driven** layer — every `update_every` probes the controller
///   recomputes the skip from the *measured* probe-cost EWMAs
///   (`core::trace`) and the per-probe hit-rate EWMA, steering toward the
///   per-pass-objective minimum (see [`adaptive_target_skip`]) instead of
///   a hand-tuned constant. While the hit rate shows live traffic, this
///   layer owns the skip and the reactive layer stands down, so a steady
///   load cannot oscillate between halving and doubling; when traffic
///   stops, ownership falls back to the reactive layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSkipPoll {
    /// Lower bound on the skip value (1 = may poll every pass).
    pub min: u64,
    /// Upper bound on the skip value.
    pub max: u64,
    /// Consecutive empty probes before the skip doubles.
    pub grow_after: u64,
    /// Weight `w` of detection latency against probe cost in the
    /// cost-driven layer's objective: larger values favor smaller skips
    /// (lower latency at higher polling cost).
    pub latency_weight: f64,
    /// Probes between cost-driven recomputations (0 disables the
    /// cost-driven layer, leaving the reactive layer alone).
    pub update_every: u64,
    /// Dead band of the cost-driven layer: the computed target must
    /// differ from the current skip by more than this fraction before the
    /// skip moves. Prevents oscillation under steady load.
    pub hysteresis: f64,
}

impl Default for AdaptiveSkipPoll {
    fn default() -> Self {
        AdaptiveSkipPoll {
            min: 1,
            max: 4096,
            grow_after: 8,
            latency_weight: 1.0,
            update_every: 32,
            hysteresis: 0.5,
        }
    }
}

/// Smoothing factor of the per-probe hit-rate EWMA.
const HIT_EWMA_ALPHA: f64 = 1.0 / 16.0;
/// Smoothing factor of the per-source local probe-cost EWMA (used when the
/// engine is not bound to a [`Trace`]).
const COST_EWMA_ALPHA: f64 = 0.25;
/// Below this per-probe hit rate the cost-driven layer considers the
/// method idle and hands control back to the reactive layer.
const COST_MODE_HIT_FLOOR: f64 = 0.01;
/// Floor on the estimated cost of one pass of the polling loop, so the
/// controller law stays finite before any probe has been timed.
const PASS_COST_FLOOR_NS: f64 = 100.0;
/// Upper bound on messages drained from one armed source per ready visit.
/// On hitting the bound the engine re-rings the source's own doorbell, so
/// the remainder is picked up next pass instead of starving other sources.
pub(crate) const READY_BATCH: u64 = 32;

/// Destination for rung doorbell tokens.
///
/// [`ReadySignal`] is generic over where a consumed `false → true` edge
/// queues its token: the single-threaded engine uses a plain MPSC list
/// ([`SegQueue`]), the sharded worker pool routes tokens to their home
/// shard ([`ReadyShards`]) and additionally wakes a parked worker. The
/// push must be internally synchronized — it runs on the producer's
/// thread, concurrently with consumers draining.
pub trait ReadySink: Send + Sync {
    /// Queues a rung source's token for a consumer to service.
    fn push_ready(&self, token: usize);
}

impl ReadySink for SegQueue<usize> {
    fn push_ready(&self, token: usize) {
        self.push(token);
    }
}

impl ReadySink for ReadyShards {
    fn push_ready(&self, token: usize) {
        self.push(token);
    }
}

/// A doorbell for one receive source: producers ring it after enqueuing a
/// message, and the poll engine then visits only rung sources instead of
/// scanning the whole rotation.
///
/// The no-missed-wakeup protocol is a flag + MPSC ready-list pair:
///
/// * **ring** (producer): `ready.swap(true, Release)`; only the observer
///   of the `false → true` transition pushes the source's token onto the
///   shared ready-list, so a burst of sends queues the token once.
/// * **visit** (consumer): pop a token, `ready.swap(false, Acquire)`,
///   *then* poll the receiver to empty.
///
/// If the producer's Release-swap is ordered before the consumer's
/// Acquire-swap in the flag's modification order, the producer's enqueue
/// happens-before the consumer's drain and the message is retrieved this
/// visit. Otherwise the producer observed `false`, which means it pushed
/// the token back onto the (internally synchronized) ready-list and the
/// source is revisited. Either way no enqueue is lost — the invariant the
/// xtask `doorbell` model check pins.
#[derive(Clone)]
pub struct ReadySignal {
    inner: Arc<SignalShared>,
}

struct SignalShared {
    /// Whether the source is currently marked ready (token queued).
    ready: AtomicBool,
    /// The source's slot in the engine's token table.
    token: usize,
    /// Where a consumed ring queues the token (the engine's shared
    /// ready-list, or a worker pool's shard set).
    sink: Arc<dyn ReadySink>,
}

impl ReadySignal {
    /// Creates a signal that queues `token` onto `list` when rung.
    pub fn new(token: usize, list: Arc<SegQueue<usize>>) -> Self {
        Self::with_sink(token, list)
    }

    /// Creates a signal that queues `token` into an arbitrary
    /// [`ReadySink`] when rung — the sharded engine's entry point.
    pub fn with_sink(token: usize, sink: Arc<impl ReadySink + 'static>) -> Self {
        ReadySignal {
            inner: Arc::new(SignalShared {
                ready: AtomicBool::new(false),
                token,
                sink,
            }),
        }
    }

    /// Marks the source ready. The producer calls this *after* the message
    /// is enqueued on the transport; the Release-swap publishes that
    /// enqueue to the consumer's Acquire-swap in [`ReadySignal::clear`].
    pub fn ring(&self) {
        if !self.inner.ready.swap(true, Ordering::Release) {
            self.inner.sink.push_ready(self.inner.token);
        }
    }

    /// Clears the flag before the consumer polls, so rings racing the
    /// drain re-queue the token rather than vanish. Public because it is
    /// the consumer half of the doorbell protocol: external drivers (and
    /// the xtask model checker) that pop tokens from the shared list must
    /// clear *before* polling the source, exactly as the engine does.
    pub fn clear(&self) {
        self.inner.ready.swap(false, Ordering::Acquire);
    }
}

/// Per-shard ready-lists for the planned sharded poll engine: tokens are
/// routed to `token % shards()`, each shard is drained by its owning
/// worker, and a retiring or rebalancing worker hands its whole shard to
/// another with [`ReadyShards::handoff`].
///
/// The handoff protocol's subtlety — the reason the xtask `shard-handoff`
/// model check exists — is that producers keep pushing to a shard *while*
/// it is being handed off. `handoff` moves only the tokens it observes;
/// anything pushed concurrently stays behind on the source shard, so a
/// consumer that takes over responsibility for a shard must keep draining
/// it (or use [`ReadyShards::pop_any`], which scans every shard and can
/// strand nothing).
pub struct ReadyShards {
    shards: Box<[SegQueue<usize>]>,
    /// Rotating start for the steal scan in [`ReadyShards::pop_any`].
    /// Without it every consumer with the same `home` scans the other
    /// shards in the same fixed order, draining the first non-empty shard
    /// to exhaustion while later shards starve under sustained load.
    steal_cursor: AtomicUsize,
}

impl ReadyShards {
    /// Creates `n` empty shards (at least one).
    pub fn new(n: usize) -> Self {
        ReadyShards {
            shards: (0..n.max(1)).map(|_| SegQueue::new()).collect(),
            steal_cursor: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Pre-sizes every shard's ring for up to `tokens` queued tokens.
    /// The doorbell latch ([`ReadySignal::ring`]) queues each token at
    /// most once, so a pool that reserves its installed-source count
    /// here never grows a ring on the producer path — even in the worst
    /// case of every token homed to one shard. Called at source-install
    /// time, off the hot path; this is what keeps the 4096-source
    /// worker-pool sweep allocation-free in steady state.
    pub fn reserve(&self, tokens: usize) {
        for shard in self.shards.iter() {
            shard.reserve(tokens);
        }
    }

    /// Queues a ready token onto its home shard (`token % shards()`).
    pub fn push(&self, token: usize) {
        self.push_to(token, token);
    }

    /// Queues a token onto an explicit shard (reduced modulo the shard
    /// count) instead of the `token % shards()` default. The worker pool
    /// routes through this with a stride-mixing hash: adoption installs
    /// each context's sources as a contiguous run, and a raw modulo
    /// aliases with that stride (every context's inbox for one method
    /// landing on the same shard), which can collapse the whole pool
    /// onto a single worker.
    pub fn push_to(&self, shard: usize, token: usize) {
        self.shards[shard % self.shards.len()].push(token);
    }

    /// Pops from one shard only — the owning worker's fast path.
    pub fn pop_local(&self, shard: usize) -> Option<usize> {
        self.shards[shard % self.shards.len()].pop()
    }

    /// Pops from `home` first, then steals from the other shards — the
    /// takeover path after a handoff, and the reason no token can strand:
    /// every shard is reachable from every consumer.
    ///
    /// The steal scan starts from a per-call rotating cursor rather than a
    /// fixed offset of `home`: a fixed start always found the same
    /// non-empty shard first, so under sustained load the shards just
    /// after `home` were drained continuously while distant shards waited
    /// until every earlier one went empty.
    pub fn pop_any(&self, home: usize) -> Option<usize> {
        let n = self.shards.len();
        if let Some(t) = self.shards[home % n].pop() {
            return Some(t);
        }
        let start = self.steal_cursor.fetch_add(1, Ordering::Relaxed);
        (0..n).find_map(|i| self.shards[(start + i) % n].pop())
    }

    /// Moves every currently queued token of `from` onto `to`, returning
    /// how many moved. Tokens pushed concurrently with the handoff may
    /// remain on `from`.
    pub fn handoff(&self, from: usize, to: usize) -> usize {
        let n = self.shards.len();
        let (from, to) = (from % n, to % n);
        if from == to {
            return 0; // self-handoff is a no-op, not an infinite loop
        }
        let mut moved = 0;
        while let Some(t) = self.shards[from].pop() {
            self.shards[to].push(t);
            moved += 1;
        }
        moved
    }

    /// Total queued tokens across all shards (racy snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(SegQueue::len).sum()
    }

    /// Whether every shard is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SegQueue::is_empty)
    }
}

/// The cost-driven controller law: the skip value minimizing the per-pass
/// objective
///
/// ```text
/// J(k) = probe_cost / k  +  latency_weight · msgs_per_pass · (k/2) · pass_cost
/// ```
///
/// — amortized probing cost plus the expected detection-latency penalty
/// (a message waits on average `k/2` passes for the next probe). Setting
/// `dJ/dk = 0` gives
///
/// ```text
/// k* = sqrt(2 · probe_cost / (latency_weight · msgs_per_pass · pass_cost))
/// ```
///
/// which is the joint operating point of the paper's Fig. 6 trade-off:
/// monotone *increasing* in the measured probe cost (expensive methods
/// are polled less) and monotone *decreasing* in traffic rate and latency
/// weight. The result is rounded and clamped to `[min, max]`.
///
/// Inputs that make the law degenerate (no cost measured yet, zero
/// traffic, or a non-positive pass cost) return `max`: with nothing to
/// detect, backing off as far as allowed is the cost-optimal choice.
pub fn adaptive_target_skip(
    cfg: &AdaptiveSkipPoll,
    probe_cost_ns: f64,
    msgs_per_pass: f64,
    pass_cost_ns: f64,
) -> u64 {
    let lo = cfg.min.max(1);
    let hi = cfg.max.max(lo);
    let w = cfg.latency_weight;
    // `x > 0.0` is false for NaN too, so one positive check rejects every
    // degenerate input (zero, negative, NaN).
    let usable = [probe_cost_ns, msgs_per_pass, pass_cost_ns, w]
        .iter()
        .all(|&x| x > 0.0);
    if !usable {
        return hi;
    }
    let k = (2.0 * probe_cost_ns / (w * msgs_per_pass * pass_cost_ns)).sqrt();
    // `as` saturates on overflow/NaN, and the clamp bounds the result.
    (k.round() as u64).clamp(lo, hi)
}

/// One method's receive source within the poll rotation.
struct PollSource {
    method: MethodId,
    receiver: Box<dyn CommReceiver>,
    /// Poll this source every `skip`-th call (1 = every call).
    skip: u64,
    /// Calls since the last actual poll of this source.
    since_last: u64,
    /// Adaptive controller, if enabled for this source.
    adaptive: Option<AdaptiveSkipPoll>,
    /// Consecutive empty probes (drives adaptive growth).
    empty_streak: u64,
    /// Local probe-cost EWMA in ns (fallback when the engine is unbound).
    cost_ewma: f64,
    /// Timed probes folded into `cost_ewma`.
    cost_samples: u64,
    /// Per-probe hit-rate EWMA (messages found per probe).
    hit_ewma: f64,
    /// Probes since the cost-driven layer last recomputed.
    probes_since_update: u64,
    /// Whether the cost-driven layer currently owns the skip value (live
    /// traffic with a measured probe cost). While set, the reactive
    /// halve/double layer stands down.
    cost_mode: bool,
    /// Cached per-method counters (set by [`PollEngine::bind`]); recording
    /// through them is lock-free.
    counters: Option<Arc<MethodCounters>>,
    /// Cached per-method trace (poll-cost EWMA), set by
    /// [`PollEngine::bind`].
    mtrace: Option<Arc<MethodTrace>>,
    /// Probes performed on this source; every
    /// [`PROBE_SAMPLE_EVERY`]-th one (starting with the first) is timed.
    probe_tick: u64,
    /// Stable identity of this source in the engine's token table (never
    /// reused, so stale ready-list entries are detectable after removal).
    token: usize,
    /// Whether the source is served by the readiness tier (out of the
    /// skip_poll rotation; visited only when its doorbell rings).
    armed: bool,
    /// The doorbell handed to the transport, kept for self-re-rings when a
    /// drain is cut short (batch limit, transport error).
    signal: Option<ReadySignal>,
}

/// One out of this many probes per source is wall-clock timed for the
/// poll-cost EWMA. Sampling keeps the steady-state cost of a probe pass
/// at a fraction of a clock read while the EWMA still converges on the
/// true probe cost (empty-probe cost is stable per method).
pub const PROBE_SAMPLE_EVERY: u64 = 16;

impl PollSource {
    /// Best available measured probe-cost estimate: the shared trace EWMA
    /// when the engine is bound (so the controller is literally driven by
    /// `core::trace`'s measurements), else the local fallback EWMA.
    fn probe_cost_estimate(&self) -> Option<f64> {
        if let Some(v) = self.mtrace.as_ref().and_then(|mt| mt.poll_cost_ns.value()) {
            return Some(v);
        }
        (self.cost_samples > 0).then_some(self.cost_ewma)
    }

    /// The cost-driven layer's periodic recomputation: decide whether the
    /// layer owns the skip (measured cost + live traffic) and, if so, move
    /// the skip to the objective minimum when it falls outside the
    /// hysteresis dead band.
    fn recompute_cost_skip(&mut self, cfg: &AdaptiveSkipPoll, pass_cost_ns: f64) {
        let Some(cost) = self.probe_cost_estimate() else {
            self.cost_mode = false;
            return;
        };
        if self.hit_ewma < COST_MODE_HIT_FLOOR {
            // Traffic evaporated: the reactive layer's growth rule takes
            // the skip back toward max on its own cadence.
            self.cost_mode = false;
            return;
        }
        self.cost_mode = true;
        // Hits arrive per probe; a probe happens every `skip` passes, so
        // the per-pass message rate is the per-probe rate divided by skip.
        let msgs_per_pass = self.hit_ewma / self.skip.max(1) as f64;
        let target = adaptive_target_skip(cfg, cost, msgs_per_pass, pass_cost_ns);
        let cur = self.skip.max(1) as f64;
        if (target as f64 - cur).abs() > cfg.hysteresis * cur {
            self.skip = target;
            self.empty_streak = 0;
        }
    }
}

/// The unified poll engine for one context.
///
/// Not thread-safe by itself; the owning context serializes access.
#[derive(Default)]
pub struct PollEngine {
    sources: Vec<PollSource>,
    /// MPSC list of tokens whose doorbells rang since the last drain.
    ready_list: Arc<SegQueue<usize>>,
    /// Token → current index in `sources` (`None` once removed). Tokens
    /// are never reused, so a stale token popped from the ready-list after
    /// its source was removed resolves to `None` and is skipped.
    token_slots: Vec<Option<usize>>,
    /// Indices of the sources still in the skip_poll rotation (unarmed),
    /// so a pass costs O(rung + polled) instead of O(sources).
    polled: Vec<usize>,
    /// Total invocations of [`PollEngine::poll_once`].
    calls: u64,
}

/// One probe of one receive source within a poll pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// The probed method.
    pub method: MethodId,
    /// Whether the probe retrieved a message.
    pub found: bool,
    /// Measured wall-clock cost of the probe in nanoseconds, if this
    /// probe was one of the timed samples (see [`PROBE_SAMPLE_EVERY`]).
    pub cost_ns: Option<u64>,
}

/// A skip_poll adjustment made by the adaptive controller during a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipChange {
    /// The adjusted method.
    pub method: MethodId,
    /// Skip value before the pass.
    pub from: u64,
    /// Skip value after the pass.
    pub to: u64,
}

/// Result of one pass of the unified polling function.
///
/// A pass always completes: messages retrieved before a failing source are
/// in `messages` *and* the failure is in `errors` — one erroring transport
/// never causes delivered traffic to be dropped.
#[derive(Debug, Default)]
pub struct PollOutcome {
    /// Messages retrieved this pass, tagged with the method that carried
    /// them.
    pub messages: Vec<(MethodId, Rsr)>,
    /// Probes issued this pass (after skip_poll filtering), with measured
    /// costs.
    pub probed: Vec<Probe>,
    /// Transport errors encountered this pass, per method. Erroring
    /// sources stay in the rotation; persistent failures repeat here.
    pub errors: Vec<(MethodId, NexusError)>,
    /// Adaptive skip_poll adjustments made during this pass.
    pub skip_changes: Vec<SkipChange>,
    /// Doorbell visits serviced this pass: `(method, messages drained)`
    /// per armed source whose ring was consumed.
    pub ready_wakeups: Vec<(MethodId, u64)>,
}

impl PollOutcome {
    /// Empties every field, keeping the vectors' storage for reuse.
    pub fn clear(&mut self) {
        self.messages.clear();
        self.probed.clear();
        self.errors.clear();
        self.skip_changes.clear();
        self.ready_wakeups.clear();
    }
}

impl PollEngine {
    /// Creates an engine with no sources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a receive source for `method` (at skip_poll = 1, in the polled
    /// tier until [`PollEngine::arm_ready`] moves it to the readiness
    /// tier).
    pub fn add_source(&mut self, method: MethodId, receiver: Box<dyn CommReceiver>) {
        let token = self.token_slots.len();
        self.token_slots.push(Some(self.sources.len()));
        self.polled.push(self.sources.len());
        self.sources.push(PollSource {
            method,
            receiver,
            skip: 1,
            since_last: 0,
            adaptive: None,
            empty_streak: 0,
            cost_ewma: 0.0,
            cost_samples: 0,
            hit_ewma: 0.0,
            probes_since_update: 0,
            cost_mode: false,
            counters: None,
            mtrace: None,
            probe_tick: 0,
            token,
            armed: false,
            signal: None,
        });
    }

    /// Rebuilds the polled-tier index list after a topology change
    /// (arming, removal). Never called from the per-pass hot path.
    fn rebuild_polled(&mut self) {
        self.polled.clear();
        self.polled.extend(
            self.sources
                .iter()
                .enumerate()
                .filter_map(|(i, s)| (!s.armed).then_some(i)),
        );
    }

    /// Moves `method`'s source to the readiness tier: hands the receiver a
    /// [`ReadySignal`] doorbell and, if the transport accepts it, removes
    /// the source from the skip_poll rotation. The doorbell is rung once
    /// immediately ("priming"), covering messages enqueued between `open`
    /// and arming. Returns whether the source is now armed.
    pub fn arm_ready(&mut self, method: MethodId) -> bool {
        let Some(idx) = self.sources.iter().position(|s| s.method == method) else {
            return false;
        };
        let total_sources = self.sources.len();
        let s = &mut self.sources[idx];
        if s.armed {
            return true;
        }
        let signal = ReadySignal::new(s.token, Arc::clone(&self.ready_list));
        if !s.receiver.set_ready_signal(signal.clone()) {
            return false;
        }
        s.armed = true;
        // Keep the shared ready-list sized for every source this engine
        // could queue at once (the latch caps each at one entry), so no
        // doorbell ring ever grows it mid-measurement.
        self.ready_list.reserve(total_sources);
        // Prime: anything already queued predates the doorbell and would
        // otherwise wait for the next send to ring.
        signal.ring();
        s.signal = Some(signal);
        self.rebuild_polled();
        true
    }

    /// Whether `method`'s source is served by the readiness tier.
    pub fn is_armed(&self, method: MethodId) -> bool {
        self.sources.iter().any(|s| s.method == method && s.armed)
    }

    /// Attaches per-method counters and trace handles (poll-cost EWMAs) to
    /// every current source. The owning context calls this once at
    /// construction; afterwards each probe records into plain atomics —
    /// no lock is taken per poll event. Engines that are never bound
    /// (benches, tests) skip recording entirely.
    pub fn bind(&mut self, stats: &Stats, trace: &Trace) {
        for s in &mut self.sources {
            s.counters = Some(stats.method(s.method));
            s.mtrace = Some(trace.method(s.method));
        }
    }

    /// Removes and returns the receiver for `method` (used when moving a
    /// method to a blocking poller thread).
    pub fn remove_source(&mut self, method: MethodId) -> Option<Box<dyn CommReceiver>> {
        let idx = self.sources.iter().position(|s| s.method == method)?;
        let removed = self.sources.remove(idx);
        self.token_slots[removed.token] = None;
        // Indices after the removal point shifted down by one.
        for (i, s) in self.sources.iter().enumerate().skip(idx) {
            self.token_slots[s.token] = Some(i);
        }
        self.rebuild_polled();
        Some(removed.receiver)
    }

    /// Removes and returns every armed source (readiness tier), leaving
    /// the polled tier intact. The caller — a sharded worker pool taking
    /// over a context's doorbell traffic — re-arms each receiver with its
    /// own sharded signal; any receiver that refuses the new signal should
    /// be handed back via [`PollEngine::add_source`] + re-arming.
    pub fn take_armed(&mut self) -> Vec<(MethodId, Box<dyn CommReceiver>)> {
        let methods: Vec<MethodId> = self
            .sources
            .iter()
            .filter(|s| s.armed)
            .map(|s| s.method)
            .collect();
        methods
            .into_iter()
            .filter_map(|m| self.remove_source(m).map(|r| (m, r)))
            .collect()
    }

    /// Sets the skip_poll value for `method`. A value of `k` means the
    /// method is checked on every `k`-th call of the polling function;
    /// `1` restores per-call checking. Values of 0 are treated as 1.
    /// Disables adaptive control for the method. Returns whether the
    /// method had a source.
    pub fn set_skip_poll(&mut self, method: MethodId, k: u64) -> bool {
        match self.sources.iter_mut().find(|s| s.method == method) {
            Some(s) => {
                s.skip = k.max(1);
                s.since_last = 0;
                s.adaptive = None;
                s.empty_streak = 0;
                s.probes_since_update = 0;
                s.cost_mode = false;
                true
            }
            None => false,
        }
    }

    /// Enables adaptive skip_poll control for `method` (starting from its
    /// current skip value, clamped into the configured range). Returns
    /// whether the method had a source.
    pub fn set_adaptive(&mut self, method: MethodId, cfg: AdaptiveSkipPoll) -> bool {
        match self.sources.iter_mut().find(|s| s.method == method) {
            Some(s) => {
                s.skip = s.skip.clamp(cfg.min.max(1), cfg.max.max(1));
                s.adaptive = Some(cfg);
                s.empty_streak = 0;
                s.probes_since_update = 0;
                s.cost_mode = false;
                true
            }
            None => false,
        }
    }

    /// Current skip_poll value for `method`.
    pub fn skip_poll(&self, method: MethodId) -> Option<u64> {
        self.sources
            .iter()
            .find(|s| s.method == method)
            .map(|s| s.skip)
    }

    /// The methods with receive sources, in rotation order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.sources.iter().map(|s| s.method).collect()
    }

    /// Runs one pass of the unified polling function: each source whose
    /// skip counter has elapsed is probed once, and each probe is timed.
    /// Transport errors from one source do not prevent probing the others
    /// and never discard messages already retrieved this pass — errors are
    /// reported in [`PollOutcome::errors`] alongside the messages.
    pub fn poll_once(&mut self) -> PollOutcome {
        let mut out = PollOutcome::default();
        self.poll_once_into(&mut out);
        out
    }

    /// Like [`PollEngine::poll_once`], but *appends* this pass's results
    /// to a caller-owned outcome. Hot loops keep one [`PollOutcome`] and
    /// reuse its vectors across passes, so a steady-state pass allocates
    /// nothing; the caller clears the outcome between passes (see
    /// [`PollOutcome::clear`]).
    pub fn poll_once_into(&mut self, out: &mut PollOutcome) {
        self.calls += 1;
        self.drain_ready(out);
        // Estimated cost of one pass of the fallback rotation: every
        // polled-tier source's measured probe cost amortized over its skip.
        // Computed once per pass (from last pass's values) for the
        // cost-driven controller layer; skipped entirely when no source
        // uses that layer.
        let pass_cost_ns = if self.polled.iter().any(|&i| {
            self.sources[i]
                .adaptive
                .is_some_and(|cfg| cfg.update_every > 0)
        }) {
            self.polled
                .iter()
                .map(|&i| {
                    let s = &self.sources[i];
                    s.probe_cost_estimate().unwrap_or(0.0) / s.skip.max(1) as f64
                })
                .sum::<f64>()
                .max(PASS_COST_FLOOR_NS)
        } else {
            0.0
        };
        for pi in 0..self.polled.len() {
            let s = &mut self.sources[self.polled[pi]];
            s.since_last += 1;
            if s.since_last < s.skip {
                continue;
            }
            s.since_last = 0;
            let skip_before = s.skip;
            // Timing every probe would double the cost of the cheap
            // in-process probes (two clock reads dwarf a queue check), so
            // only every `PROBE_SAMPLE_EVERY`-th probe per source is
            // timed — the first one always, so the EWMA is seeded
            // immediately. Empty-probe cost is stable, so the sampled
            // EWMA converges to the same value at a fraction of the
            // overhead.
            let timed = s.probe_tick.is_multiple_of(PROBE_SAMPLE_EVERY);
            s.probe_tick += 1;
            let start = timed.then(Instant::now);
            let polled = s.receiver.poll();
            let cost_ns = start.map(|t| t.elapsed().as_nanos() as u64);
            let found = matches!(polled, Ok(Some(_)));
            if let Some(ns) = cost_ns {
                if let Some(mt) = &s.mtrace {
                    mt.poll_cost_ns.record(ns as f64);
                }
                let x = ns as f64;
                s.cost_ewma = if s.cost_samples == 0 {
                    x
                } else {
                    s.cost_ewma + COST_EWMA_ALPHA * (x - s.cost_ewma)
                };
                s.cost_samples += 1;
            }
            if s.adaptive.is_some() {
                // Only the adaptive controller consumes the hit-rate EWMA;
                // skip the float update for plain sources.
                s.hit_ewma += HIT_EWMA_ALPHA * (f64::from(u8::from(found)) - s.hit_ewma);
            }
            if let Some(c) = &s.counters {
                c.note_poll(found);
            }
            out.probed.push(Probe {
                method: s.method,
                found,
                cost_ns,
            });
            match polled {
                Ok(Some(msg)) => {
                    // Recv accounting happens here, where the per-method
                    // handles are already cached, so the dispatch loop
                    // upstairs never touches the stats/trace maps.
                    let wire = msg.wire_len() as u64;
                    if let Some(c) = &s.counters {
                        c.note_recv(wire as usize);
                    }
                    if let Some(mt) = &s.mtrace {
                        mt.recv_bytes.record(wire);
                    }
                    out.messages.push((s.method, msg));
                    if let Some(cfg) = s.adaptive {
                        s.empty_streak = 0;
                        if !s.cost_mode {
                            // Activity: look more often. (With the
                            // cost-driven layer in charge, reactive halving
                            // would fight the computed operating point and
                            // oscillate under steady load.)
                            s.skip = (s.skip / 2).max(cfg.min.max(1));
                        }
                    }
                }
                Ok(None) => {
                    if let Some(cfg) = s.adaptive {
                        s.empty_streak += 1;
                        if !s.cost_mode && s.empty_streak >= cfg.grow_after {
                            // Sustained silence: back off.
                            s.empty_streak = 0;
                            s.skip = (s.skip * 2).clamp(cfg.min.max(1), cfg.max.max(1));
                        }
                    }
                }
                Err(e) => {
                    if let Some(cfg) = s.adaptive {
                        // An error is as empty-handed as Ok(None): without
                        // feeding the grow path, an adaptive source whose
                        // transport has died would be probed at its minimum
                        // skip forever.
                        s.empty_streak += 1;
                        if !s.cost_mode && s.empty_streak >= cfg.grow_after {
                            s.empty_streak = 0;
                            s.skip = (s.skip * 2).clamp(cfg.min.max(1), cfg.max.max(1));
                        }
                    }
                    if let Some(c) = &s.counters {
                        c.note_poll_error();
                    }
                    out.errors.push((s.method, e));
                }
            }
            if let Some(cfg) = s.adaptive {
                if cfg.update_every > 0 {
                    s.probes_since_update += 1;
                    if s.probes_since_update >= cfg.update_every {
                        s.probes_since_update = 0;
                        s.recompute_cost_skip(&cfg, pass_cost_ns);
                    }
                }
            }
            if s.skip != skip_before {
                out.skip_changes.push(SkipChange {
                    method: s.method,
                    from: skip_before,
                    to: s.skip,
                });
            }
        }
    }

    /// Visits every armed source whose doorbell rang since the last pass,
    /// polling each to empty (bounded by [`READY_BATCH`] per visit). The
    /// flag is cleared with an Acquire-swap *before* polling, so a ring
    /// racing the drain re-queues the token instead of vanishing — the
    /// no-missed-wakeup protocol documented on [`ReadySignal`]. Cost is
    /// O(rung sources), independent of how many idle sources are armed.
    fn drain_ready(&mut self, out: &mut PollOutcome) {
        // Only service tokens that were already queued when the pass
        // began: tokens re-rung mid-drain (batch limit, erroring source,
        // racing producers) land in the *next* pass. This both bounds the
        // pass and keeps one hot source from monopolizing it.
        let max_visits = self.ready_list.len();
        for _ in 0..max_visits {
            let Some(token) = self.ready_list.pop() else {
                break;
            };
            // Stale tokens (source removed after ringing) resolve to None.
            let Some(idx) = self.token_slots.get(token).copied().flatten() else {
                continue;
            };
            let s = &mut self.sources[idx];
            let Some(signal) = s.signal.clone() else {
                continue;
            };
            signal.clear();
            let mut drained = 0u64;
            loop {
                if drained >= READY_BATCH {
                    // Leave the remainder for the next pass without losing
                    // the wakeup: ring our own doorbell.
                    signal.ring();
                    break;
                }
                let polled = s.receiver.poll();
                let found = matches!(polled, Ok(Some(_)));
                if let Some(c) = &s.counters {
                    c.note_poll(found);
                }
                // Ready-path probes are untimed: the poll-cost EWMA steers
                // the skip_poll rotation, which armed sources have left.
                out.probed.push(Probe {
                    method: s.method,
                    found,
                    cost_ns: None,
                });
                match polled {
                    Ok(Some(msg)) => {
                        let wire = msg.wire_len() as u64;
                        if let Some(c) = &s.counters {
                            c.note_recv(wire as usize);
                        }
                        if let Some(mt) = &s.mtrace {
                            mt.recv_bytes.record(wire);
                        }
                        out.messages.push((s.method, msg));
                        drained += 1;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        if let Some(c) = &s.counters {
                            c.note_poll_error();
                        }
                        out.errors.push((s.method, e));
                        // Messages may still be queued behind a transient
                        // error; re-ring so the source is revisited next
                        // pass instead of parked on a cleared flag.
                        signal.ring();
                        break;
                    }
                }
            }
            if let Some(c) = &s.counters {
                c.note_ready_wakeup();
            }
            out.ready_wakeups.push((s.method, drained));
        }
    }

    /// Total calls to [`PollEngine::poll_once`] so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Removes every source from the rotation and returns the receivers
    /// for the caller to close. Closing can block (socket receivers join
    /// their pump threads), so a caller that keeps the engine behind a
    /// lock must close the returned receivers *after* releasing it — see
    /// `Context::shutdown`.
    pub fn drain_sources(&mut self) -> Vec<Box<dyn CommReceiver>> {
        let receivers = self.sources.drain(..).map(|s| s.receiver).collect();
        self.token_slots.clear();
        self.polled.clear();
        while self.ready_list.pop().is_some() {}
        receivers
    }

    /// Closes all receivers. Only for engines not shared behind a lock —
    /// this joins pump threads inline (see [`PollEngine::drain_sources`]).
    pub fn close_all(&mut self) {
        for mut r in self.drain_sources() {
            r.close();
        }
    }
}

/// A dedicated blocking receive thread for one method.
///
/// On systems where a method supports blocking receives, a specialized
/// polling function can run in its own thread of control and block, so the
/// method never appears in the poll rotation at all. Retrieved messages are
/// parked in a lock-free queue that the context drains during `progress`.
pub struct BlockingPoller {
    method: MethodId,
    queue: Arc<SegQueue<Rsr>>,
    stop: Arc<AtomicBool>,
    /// Transport errors seen by the thread (total, not consecutive).
    errors: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

/// First backoff after a blocking-poller transport error.
const BLOCKING_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Ceiling on the blocking poller's error backoff.
const BLOCKING_BACKOFF_CAP: Duration = Duration::from_millis(256);

impl BlockingPoller {
    /// Spawns a thread that blocks on `receiver` (with `timeout` as the
    /// shutdown-check granularity) and enqueues everything it receives.
    /// Fails with [`NexusError::Io`] if the OS refuses the thread.
    pub fn spawn(
        method: MethodId,
        receiver: Box<dyn CommReceiver>,
        timeout: Duration,
    ) -> crate::error::Result<Self> {
        Self::spawn_instrumented(method, receiver, timeout, None, None)
    }

    /// Like [`BlockingPoller::spawn`], with instrumentation: transport
    /// errors are counted into `counters` and surfaced as
    /// [`TraceEventKind::PollError`] events in `trace` (at each
    /// power-of-two consecutive count, to bound ring traffic). Consecutive
    /// errors back off exponentially from 1 ms, capped at 256 ms, so a
    /// persistently failing transport does not spin the thread; a
    /// successful receive resets the backoff.
    pub fn spawn_instrumented(
        method: MethodId,
        mut receiver: Box<dyn CommReceiver>,
        timeout: Duration,
        counters: Option<Arc<MethodCounters>>,
        trace: Option<Arc<Trace>>,
    ) -> crate::error::Result<Self> {
        let queue = Arc::new(SegQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let q = Arc::clone(&queue);
        let st = Arc::clone(&stop);
        let errs = Arc::clone(&errors);
        // Resolve the per-method trace handle once; the thread then
        // records receives through plain atomics.
        let mtrace = trace.as_ref().map(|t| t.method(method));
        let handle = std::thread::Builder::new()
            .name(format!("nexus-blocking-poll-{method}"))
            .spawn(move || {
                let mut consecutive: u64 = 0;
                while !st.load(Ordering::Relaxed) {
                    match receiver.recv_timeout(timeout) {
                        Ok(Some(msg)) => {
                            consecutive = 0;
                            let wire = msg.wire_len() as u64;
                            if let Some(c) = &counters {
                                c.note_recv(wire as usize);
                            }
                            if let Some(mt) = &mtrace {
                                mt.recv_bytes.record(wire);
                            }
                            q.push(msg);
                        }
                        Ok(None) => {
                            consecutive = 0;
                        }
                        Err(_) => {
                            consecutive += 1;
                            errs.fetch_add(1, Ordering::Relaxed);
                            if let Some(c) = &counters {
                                c.note_poll_error();
                            }
                            if let Some(t) = &trace {
                                if consecutive.is_power_of_two() {
                                    t.record_event(TraceEventKind::PollError {
                                        method,
                                        consecutive,
                                    });
                                }
                            }
                            let exp = consecutive.saturating_sub(1).min(8) as u32;
                            let backoff = BLOCKING_BACKOFF_BASE
                                .saturating_mul(1u32 << exp)
                                .min(BLOCKING_BACKOFF_CAP);
                            std::thread::sleep(backoff);
                        }
                    }
                }
                receiver.close();
            })
            .map_err(NexusError::Io)?;
        Ok(BlockingPoller {
            method,
            queue,
            stop,
            errors,
            handle: Some(handle),
        })
    }

    /// Total transport errors the thread has seen.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The method this poller serves.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Takes one message received by the blocking thread, if any.
    pub fn try_pop(&self) -> Option<Rsr> {
        self.queue.pop()
    }

    /// Signals the thread to stop and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BlockingPoller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextId;
    use crate::endpoint::EndpointId;
    use crate::error::Result;
    use bytes::Bytes;
    use parking_lot::Mutex;

    /// A scripted receiver: pops from a shared vec on each poll.
    struct Scripted {
        inbox: Arc<Mutex<Vec<Rsr>>>,
        polls: Arc<Mutex<u64>>,
    }

    impl CommReceiver for Scripted {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            *self.polls.lock() += 1;
            Ok(self.inbox.lock().pop())
        }
        fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Rsr>> {
            let deadline = std::time::Instant::now() + timeout;
            loop {
                if let Some(m) = self.inbox.lock().pop() {
                    *self.polls.lock() += 1;
                    return Ok(Some(m));
                }
                if std::time::Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    type Inbox = Arc<Mutex<Vec<Rsr>>>;
    type PollCount = Arc<Mutex<u64>>;

    fn scripted() -> (Scripted, Inbox, PollCount) {
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let polls = Arc::new(Mutex::new(0));
        (
            Scripted {
                inbox: Arc::clone(&inbox),
                polls: Arc::clone(&polls),
            },
            inbox,
            polls,
        )
    }

    fn msg(h: &str) -> Rsr {
        Rsr::new(ContextId(0), EndpointId(0), h, Bytes::new())
    }

    #[test]
    fn poll_rotates_all_sources_by_default() {
        let mut eng = PollEngine::new();
        let (r1, in1, _) = scripted();
        let (r2, in2, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r1));
        eng.add_source(MethodId::TCP, Box::new(r2));
        in1.lock().push(msg("a"));
        in2.lock().push(msg("b"));
        let out = eng.poll_once();
        assert_eq!(out.messages.len(), 2);
        assert_eq!(out.probed.len(), 2);
    }

    #[test]
    fn skip_poll_reduces_probe_frequency() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        let (r2, _, p2) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r1));
        eng.add_source(MethodId::TCP, Box::new(r2));
        assert!(eng.set_skip_poll(MethodId::TCP, 5));
        for _ in 0..20 {
            eng.poll_once();
        }
        assert_eq!(*p1.lock(), 20, "cheap method polled every time");
        assert_eq!(*p2.lock(), 4, "expensive method polled every 5th time");
    }

    #[test]
    fn skip_poll_one_means_every_call_and_zero_is_clamped() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r1));
        eng.set_skip_poll(MethodId::TCP, 0);
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(1));
        for _ in 0..3 {
            eng.poll_once();
        }
        assert_eq!(*p1.lock(), 3);
        assert!(!eng.set_skip_poll(MethodId::UDP, 2));
    }

    #[test]
    fn messages_still_arrive_with_skip_poll_just_later() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_skip_poll(MethodId::TCP, 3);
        inbox.lock().push(msg("late"));
        let mut got_at = None;
        for i in 1..=6 {
            let out = eng.poll_once();
            if !out.messages.is_empty() {
                got_at = Some(i);
                break;
            }
        }
        assert_eq!(got_at, Some(3));
    }

    #[test]
    fn remove_source_stops_polling_it() {
        let mut eng = PollEngine::new();
        let (r1, _, p1) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r1));
        let taken = eng.remove_source(MethodId::TCP);
        assert!(taken.is_some());
        eng.poll_once();
        assert_eq!(*p1.lock(), 0);
        assert!(eng.remove_source(MethodId::TCP).is_none());
    }

    #[test]
    fn adaptive_skip_grows_while_silent() {
        let mut eng = PollEngine::new();
        let (r, _, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 64,
                grow_after: 4,
                ..Default::default()
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(1));
        // 4 empty probes -> skip 2; 4 more -> 4; ... capped at 64.
        for _ in 0..1000 {
            eng.poll_once();
        }
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(64), "capped at max");
    }

    #[test]
    fn adaptive_skip_falls_on_traffic() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_skip_poll(MethodId::TCP, 32);
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 64,
                grow_after: 1_000_000,
                ..Default::default()
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(32));
        // Each delivered message halves the skip: 32 -> 16 -> 8 -> 4.
        for expect in [16u64, 8, 4] {
            inbox.lock().push(msg("m"));
            loop {
                let out = eng.poll_once();
                if !out.messages.is_empty() {
                    break;
                }
            }
            assert_eq!(eng.skip_poll(MethodId::TCP), Some(expect));
        }
    }

    #[test]
    fn adaptive_respects_min_bound_and_manual_reset() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 4,
                max: 64,
                grow_after: 2,
                ..Default::default()
            },
        );
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(4), "clamped up to min");
        inbox.lock().push(msg("m"));
        loop {
            if !eng.poll_once().messages.is_empty() {
                break;
            }
        }
        assert_eq!(eng.skip_poll(MethodId::TCP), Some(4), "min bound holds");
        // Manual set_skip_poll disables adaptation.
        eng.set_skip_poll(MethodId::TCP, 7);
        for _ in 0..100 {
            eng.poll_once();
        }
        assert_eq!(
            eng.skip_poll(MethodId::TCP),
            Some(7),
            "no drift after manual set"
        );
    }

    #[test]
    fn blocking_poller_delivers_and_stops() {
        let (r, inbox, _) = scripted();
        let poller = BlockingPoller::spawn(MethodId::TCP, Box::new(r), Duration::from_millis(5))
            .expect("spawn poller");
        inbox.lock().push(msg("x"));
        let mut got = None;
        for _ in 0..200 {
            if let Some(m) = poller.try_pop() {
                got = Some(m);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.expect("message should arrive").handler, "x");
        poller.stop();
    }

    #[test]
    fn poll_outcome_records_empty_probes() {
        let mut eng = PollEngine::new();
        let (r, _, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r));
        let out = eng.poll_once();
        assert_eq!(out.probed.len(), 1);
        assert_eq!(out.probed[0].method, MethodId::MPL);
        assert!(!out.probed[0].found);
        assert!(out.messages.is_empty());
        assert!(out.errors.is_empty());
    }

    /// A receiver whose every poll fails with a transport error.
    struct Failing;

    impl CommReceiver for Failing {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            Err(NexusError::ConnectionClosed)
        }
        fn recv_timeout(&mut self, _timeout: Duration) -> Result<Option<Rsr>> {
            Err(NexusError::ConnectionClosed)
        }
    }

    #[test]
    fn erroring_source_does_not_drop_retrieved_messages() {
        // Regression: an error from one source used to turn the whole pass
        // into Err, discarding messages other sources had already handed
        // over. The erroring source comes first so its failure happens
        // before the delivering source is probed.
        let mut eng = PollEngine::new();
        let (good, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(Failing));
        eng.add_source(MethodId::MPL, Box::new(good));
        inbox.lock().push(msg("survivor"));
        let out = eng.poll_once();
        assert_eq!(out.messages.len(), 1, "delivered message must survive");
        assert_eq!(out.messages[0].1.handler, "survivor");
        assert_eq!(out.errors.len(), 1, "and the error must be reported");
        assert_eq!(out.errors[0].0, MethodId::TCP);
        assert!(matches!(out.errors[0].1, NexusError::ConnectionClosed));
        // The erroring source stays in the rotation and keeps reporting.
        let again = eng.poll_once();
        assert_eq!(again.errors.len(), 1);
    }

    #[test]
    fn probes_carry_measured_costs() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(r));
        inbox.lock().push(msg("m"));
        let out = eng.poll_once();
        assert!(out.probed[0].found);
        // The first probe of a source is always a timed sample; check the
        // cost is populated sanely (a mutex-guarded vec pop stays well
        // under a second).
        assert!(out.probed[0].cost_ns.unwrap() < 1_000_000_000);
        // Subsequent probes inside the sampling window are untimed.
        let next = eng.poll_once();
        assert_eq!(next.probed[0].cost_ns, None);
    }

    #[test]
    fn bound_engine_records_polls_and_errors_lock_free() {
        let stats = Stats::new();
        let trace = Trace::new();
        let mut eng = PollEngine::new();
        let (good, inbox, _) = scripted();
        eng.add_source(MethodId::MPL, Box::new(good));
        eng.add_source(MethodId::TCP, Box::new(Failing));
        eng.bind(&stats, &trace);
        inbox.lock().push(msg("m"));
        for _ in 0..3 {
            eng.poll_once();
        }
        let mpl = stats.snapshot_method(MethodId::MPL);
        assert_eq!(mpl.polls, 3);
        assert_eq!(mpl.empty_polls, 2, "one probe found the message");
        let tcp = stats.snapshot_method(MethodId::TCP);
        assert_eq!(tcp.polls, 3);
        assert_eq!(tcp.poll_errors, 3);
        let ewma = trace.get_method(MethodId::MPL).unwrap();
        // Of the three probes only the first falls on the sampling grid.
        assert_eq!(ewma.poll_cost_ns.samples(), 1);
        assert!(ewma.poll_cost_ns.value().is_some());
    }

    #[test]
    fn adaptive_changes_are_reported_as_skip_changes() {
        let mut eng = PollEngine::new();
        let (r, _, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 8,
                grow_after: 2,
                ..Default::default()
            },
        );
        let mut changes = Vec::new();
        for _ in 0..6 {
            changes.extend(eng.poll_once().skip_changes);
        }
        assert_eq!(
            changes,
            vec![
                SkipChange {
                    method: MethodId::TCP,
                    from: 1,
                    to: 2
                },
                SkipChange {
                    method: MethodId::TCP,
                    from: 2,
                    to: 4
                },
            ]
        );
    }

    #[test]
    fn cost_layer_owns_skip_under_steady_load_without_oscillation() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 64,
                grow_after: 4,
                update_every: 16,
                ..Default::default()
            },
        );
        // Steady saturating load: every probe finds a message. The
        // reactive layer alone would pin the skip at min while the streak
        // never grows — but after `update_every` probes the cost layer
        // takes over and must then hold the skip still (dead band), not
        // bounce it between halve and double.
        let mut changes_after_warmup = Vec::new();
        for i in 0..400 {
            inbox.lock().push(msg("steady"));
            let out = eng.poll_once();
            if i >= 64 {
                changes_after_warmup.extend(out.skip_changes);
            }
        }
        assert!(
            changes_after_warmup.is_empty(),
            "skip oscillated under steady load: {changes_after_warmup:?}"
        );
        // With every probe hitting, k* = sqrt(2·c / (1/k · c/k)) ≈ k·√2
        // per single-source pass cost — the law keeps the skip at the low
        // end rather than backing off a live method.
        assert!(eng.skip_poll(MethodId::TCP).unwrap() <= 2);
    }

    /// A doorbell-capable receiver: lock-free inbox plus a write-once
    /// bell, mirroring how real transports install the signal.
    struct BellInbox {
        queue: SegQueue<Rsr>,
        bell: std::sync::OnceLock<ReadySignal>,
    }

    impl BellInbox {
        fn send(&self, m: Rsr) {
            self.queue.push(m);
            if let Some(b) = self.bell.get() {
                b.ring();
            }
        }
    }

    struct Belled {
        inbox: Arc<BellInbox>,
        polls: PollCount,
    }

    impl CommReceiver for Belled {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            *self.polls.lock() += 1;
            Ok(self.inbox.queue.pop())
        }
        fn set_ready_signal(&mut self, signal: ReadySignal) -> bool {
            self.inbox.bell.set(signal).is_ok()
        }
    }

    fn belled() -> (Belled, Arc<BellInbox>, PollCount) {
        let inbox = Arc::new(BellInbox {
            queue: SegQueue::new(),
            bell: std::sync::OnceLock::new(),
        });
        let polls = Arc::new(Mutex::new(0));
        (
            Belled {
                inbox: Arc::clone(&inbox),
                polls: Arc::clone(&polls),
            },
            inbox,
            polls,
        )
    }

    #[test]
    fn armed_source_is_drained_via_the_ready_path() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = belled();
        eng.add_source(MethodId::TCP, Box::new(r));
        assert!(!eng.is_armed(MethodId::TCP));
        assert!(eng.arm_ready(MethodId::TCP));
        assert!(eng.is_armed(MethodId::TCP));
        // Drain the priming ring so the next pass starts parked.
        eng.poll_once();
        inbox.send(msg("rung"));
        let out = eng.poll_once();
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].1.handler, "rung");
        assert_eq!(out.ready_wakeups, vec![(MethodId::TCP, 1)]);
    }

    #[test]
    fn idle_armed_source_is_never_probed() {
        let mut eng = PollEngine::new();
        let (r, _, polls) = belled();
        eng.add_source(MethodId::TCP, Box::new(r));
        assert!(eng.arm_ready(MethodId::TCP));
        eng.poll_once(); // service the priming ring
        let after_prime = *polls.lock();
        for _ in 0..50 {
            eng.poll_once();
        }
        assert_eq!(
            *polls.lock(),
            after_prime,
            "an idle armed source must cost zero probes per pass"
        );
    }

    #[test]
    fn arming_is_rejected_by_non_supporting_receivers() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = scripted();
        eng.add_source(MethodId::TCP, Box::new(r));
        assert!(!eng.arm_ready(MethodId::TCP), "scripted has no doorbell");
        assert!(!eng.is_armed(MethodId::TCP));
        assert!(!eng.arm_ready(MethodId::UDP), "unknown method");
        // The source stays in the polled rotation and still delivers.
        inbox.lock().push(msg("polled"));
        assert_eq!(eng.poll_once().messages.len(), 1);
    }

    #[test]
    fn messages_sent_before_arming_are_recovered_by_the_priming_ring() {
        // A transport can enqueue between open() and arm_ready(); the bell
        // was not installed yet, so nobody rang. The priming ring makes
        // the first pass after arming visit the source anyway.
        let mut eng = PollEngine::new();
        let (r, inbox, _) = belled();
        inbox.queue.push(msg("early"));
        eng.add_source(MethodId::TCP, Box::new(r));
        assert!(eng.arm_ready(MethodId::TCP));
        let out = eng.poll_once();
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].1.handler, "early");
    }

    #[test]
    fn ready_visit_is_bounded_by_batch_and_rerings_itself() {
        let mut eng = PollEngine::new();
        let (r, inbox, _) = belled();
        eng.add_source(MethodId::TCP, Box::new(r));
        assert!(eng.arm_ready(MethodId::TCP));
        for i in 0..40 {
            inbox.send(msg(if i % 2 == 0 { "a" } else { "b" }));
        }
        // One visit drains at most READY_BATCH, then re-rings its own
        // bell so the remainder lands in the next pass instead of
        // starving every other source.
        let first = eng.poll_once();
        assert_eq!(first.messages.len(), READY_BATCH as usize);
        let second = eng.poll_once();
        assert_eq!(second.messages.len(), 40 - READY_BATCH as usize);
        assert!(eng.poll_once().messages.is_empty());
    }

    #[test]
    fn stale_tokens_from_removed_sources_are_skipped() {
        let mut eng = PollEngine::new();
        let (r1, inbox1, _) = belled();
        let (r2, inbox2, _) = belled();
        eng.add_source(MethodId::TCP, Box::new(r1));
        eng.add_source(MethodId::UDP, Box::new(r2));
        assert!(eng.arm_ready(MethodId::TCP));
        assert!(eng.arm_ready(MethodId::UDP));
        // TCP's priming token (and a real ring) are still queued when the
        // source goes away; the engine must drop them on the floor.
        inbox1.send(msg("orphan"));
        assert!(eng.remove_source(MethodId::TCP).is_some());
        inbox2.send(msg("survivor"));
        let out = eng.poll_once();
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].0, MethodId::UDP);
    }

    #[test]
    fn erroring_adaptive_source_backs_off_to_max() {
        // Regression: an `Err` probe fed neither the empty streak nor the
        // hit EWMA, so a dead transport under adaptive control was probed
        // at minimum skip forever.
        let mut eng = PollEngine::new();
        eng.add_source(MethodId::TCP, Box::new(Failing));
        eng.set_adaptive(
            MethodId::TCP,
            AdaptiveSkipPoll {
                min: 1,
                max: 8,
                grow_after: 2,
                ..Default::default()
            },
        );
        for _ in 0..100 {
            eng.poll_once();
        }
        assert_eq!(
            eng.skip_poll(MethodId::TCP),
            Some(8),
            "persistent errors must drive the skip to cfg.max"
        );
    }

    #[test]
    fn ready_error_is_reported_and_visit_rerings() {
        // An armed source whose transport dies: the error surfaces once
        // per pass (re-ring keeps it visible) without wedging the engine.
        struct BelledFailing;
        impl CommReceiver for BelledFailing {
            fn poll(&mut self) -> Result<Option<Rsr>> {
                Err(NexusError::ConnectionClosed)
            }
            fn set_ready_signal(&mut self, _signal: ReadySignal) -> bool {
                true
            }
        }
        let mut eng = PollEngine::new();
        eng.add_source(MethodId::TCP, Box::new(BelledFailing));
        assert!(eng.arm_ready(MethodId::TCP));
        for _ in 0..3 {
            let out = eng.poll_once();
            assert_eq!(out.errors.len(), 1);
            assert!(matches!(out.errors[0].1, NexusError::ConnectionClosed));
        }
    }

    #[test]
    fn blocking_poller_counts_errors_and_backs_off() {
        let stats = Stats::new();
        let trace = Arc::new(Trace::new());
        let poller = BlockingPoller::spawn_instrumented(
            MethodId::TCP,
            Box::new(Failing),
            Duration::from_millis(1),
            Some(stats.method(MethodId::TCP)),
            Some(Arc::clone(&trace)),
        )
        .expect("spawn poller");
        std::thread::sleep(Duration::from_millis(60));
        let seen = poller.error_count();
        assert!(seen >= 2, "errors keep being counted, saw {seen}");
        // Exponential backoff: 60 ms admits at most 1+2+4+8+16+32 ms of
        // sleeping ≈ 6 errors; a 1 ms flat sleep would admit ~60.
        assert!(seen <= 10, "backoff must slow the error loop, saw {seen}");
        assert_eq!(stats.snapshot_method(MethodId::TCP).poll_errors, seen);
        let events = trace.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::PollError { method, .. } if method == MethodId::TCP)),
            "poll errors surface in the event ring"
        );
        poller.stop();
    }

    #[test]
    fn ready_shards_route_tokens_to_their_home_shard() {
        let shards = ReadyShards::new(3);
        for t in 0..9 {
            shards.push(t);
        }
        assert_eq!(shards.len(), 9);
        for home in 0..3 {
            let mut got = Vec::new();
            while let Some(t) = shards.pop_local(home) {
                got.push(t);
            }
            assert_eq!(got, vec![home, home + 3, home + 6], "shard {home}");
        }
        assert!(shards.is_empty());
    }

    #[test]
    fn ready_shards_pop_any_reaches_every_shard() {
        let shards = ReadyShards::new(4);
        shards.push(3); // home shard 3, consumer homed on 0
        assert_eq!(shards.pop_any(0), Some(3));
        assert_eq!(shards.pop_any(0), None);
    }

    #[test]
    fn ready_shards_handoff_moves_the_whole_shard() {
        let shards = ReadyShards::new(2);
        for t in [1, 3, 5] {
            shards.push(t);
        }
        shards.push(0);
        assert_eq!(shards.handoff(1, 0), 3);
        assert_eq!(shards.pop_local(1), None, "source shard is empty");
        let mut got = Vec::new();
        while let Some(t) = shards.pop_local(0) {
            got.push(t);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 3, 5]);
        assert_eq!(shards.handoff(0, 0), 0, "self-handoff is a no-op");
    }

    #[test]
    fn ready_shards_concurrent_push_and_steal_lose_nothing() {
        use std::sync::atomic::AtomicUsize;
        const PER_THREAD: usize = 400;
        const THREADS: usize = 4;
        let shards = ReadyShards::new(THREADS);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let shards = &shards;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        shards.push(t + THREADS * i);
                    }
                });
            }
            // One stealer drains via pop_any while producers push, with a
            // mid-stream handoff thrown in.
            let shards = &shards;
            let popped = &popped;
            s.spawn(move || {
                let mut n = 0;
                while n < THREADS * PER_THREAD {
                    if n == PER_THREAD {
                        shards.handoff(1, 0);
                    }
                    if shards.pop_any(0).is_some() {
                        n += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                popped.store(n, std::sync::atomic::Ordering::Release);
            });
        });
        assert_eq!(
            popped.load(std::sync::atomic::Ordering::Acquire),
            THREADS * PER_THREAD
        );
        assert!(shards.is_empty(), "every token was popped exactly once");
    }

    /// Regression (fixed pop_any scan start): with `home` empty, the steal
    /// scan used to probe the other shards in the same fixed order every
    /// call, so the first backlogged shard was drained to exhaustion while
    /// later ones starved. The rotating cursor must reach every backlogged
    /// shard within one full rotation.
    #[test]
    fn ready_shards_pop_any_steal_scan_is_fair_across_backlogged_shards() {
        const N: usize = 4;
        let shards = ReadyShards::new(N);
        // Shards 1..3 each hold a deep backlog; home shard 0 stays empty.
        for i in 0..100 {
            for shard in 1..N {
                shards.push(N * i + shard);
            }
        }
        let mut seen = [false; N];
        // One rotation of the cursor plus one call must visit every
        // backlogged shard; the old fixed-start scan would return tokens
        // from shard 1 a hundred times in a row here.
        for _ in 0..=N {
            let t = shards.pop_any(0).expect("backlog is non-empty");
            seen[t % N] = true;
        }
        assert!(
            seen[1] && seen[2] && seen[3],
            "steal scan starved a backlogged shard: {seen:?}"
        );
    }

    /// Live-thread witness for the DPOR `shard-handoff` model check:
    /// producers keep pushing while one worker retires mid-stream via
    /// `handoff` and a surviving worker takes over with `pop_any`. Every
    /// token must be serviced exactly once — none lost to the handoff
    /// window, none duplicated by the concurrent steal.
    #[test]
    fn ready_shards_handoff_with_live_producers_services_each_token_once() {
        use parking_lot::Mutex;
        const N: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        const PRODUCERS: usize = 2;
        let shards = ReadyShards::new(N);
        let serviced: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let retiring_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Producers push disjoint token ranges, landing on all shards.
            for p in 0..PRODUCERS {
                let shards = &shards;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        shards.push(p * PER_PRODUCER + i);
                    }
                });
            }
            // The retiring worker owns shard 1: it services part of its
            // backlog, then hands the shard to worker 0 and exits — while
            // both producers are still pushing (tokens pushed to shard 1
            // after the handoff stay there; the survivor's pop_any scan is
            // what keeps them from stranding).
            let shards = &shards;
            let serviced_ref = &serviced;
            let retiring = &retiring_seen;
            s.spawn(move || {
                let mut mine = Vec::new();
                while mine.len() < 64 {
                    if let Some(t) = shards.pop_local(1) {
                        mine.push(t);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                shards.handoff(1, 0);
                retiring.store(mine.len(), Ordering::Release);
                serviced_ref.lock().extend(mine);
            });
            // The surviving worker drains its own shard while the retiree
            // is active (stealing shard 1 out from under it would starve
            // the retiree's fixed quota), then takes over everything via
            // pop_any once the handoff has happened.
            s.spawn(move || {
                let total = PRODUCERS * PER_PRODUCER;
                let mut mine = Vec::new();
                loop {
                    let others = retiring.load(Ordering::Acquire);
                    let popped = if others > 0 {
                        shards.pop_any(0)
                    } else {
                        shards.pop_local(0)
                    };
                    if let Some(t) = popped {
                        mine.push(t);
                        continue;
                    }
                    if others > 0 && mine.len() + others == total {
                        break;
                    }
                    std::hint::spin_loop();
                }
                serviced_ref.lock().extend(mine);
            });
        });
        let mut got = serviced.into_inner();
        got.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(
            got, expected,
            "handoff lost or duplicated tokens under live producers"
        );
        assert!(shards.is_empty());
    }

    #[test]
    fn stale_token_from_a_removed_source_is_skipped_mid_drain() {
        let mut eng = PollEngine::new();
        let (r0, inbox0, _) = belled();
        let (r1, inbox1, _) = belled();
        eng.add_source(MethodId::TCP, Box::new(r0));
        eng.add_source(MethodId::UDP, Box::new(r1));
        assert!(eng.arm_ready(MethodId::TCP));
        assert!(eng.arm_ready(MethodId::UDP));
        eng.poll_once(); // service the priming rings
                         // Both sources ring, then the first is removed while its token is
                         // still sitting on the ready list.
        inbox0.send(msg("stale"));
        inbox1.send(msg("live"));
        let removed = eng.remove_source(MethodId::TCP);
        assert!(removed.is_some());
        let out = eng.poll_once();
        assert!(out.errors.is_empty());
        assert_eq!(out.messages.len(), 1, "only the live source delivers");
        assert_eq!(out.messages[0].0, MethodId::UDP);
        assert_eq!(out.messages[0].1.handler, "live");
        // The stale token is consumed, not re-queued: the next pass does
        // no ready work at all.
        let out = eng.poll_once();
        assert!(out.messages.is_empty());
        assert!(out.ready_wakeups.is_empty());
    }

    #[test]
    fn ring_storm_from_eight_producers_queues_the_token_exactly_once() {
        const PRODUCERS: usize = 8;
        const RINGS_EACH: usize = 1000;
        let list = Arc::new(SegQueue::new());
        let signal = ReadySignal::new(7, Arc::clone(&list));
        std::thread::scope(|s| {
            for _ in 0..PRODUCERS {
                let signal = &signal;
                s.spawn(move || {
                    for _ in 0..RINGS_EACH {
                        signal.ring();
                    }
                });
            }
        });
        // Only the observer of the false->true transition pushes, so the
        // whole storm queues exactly one entry.
        assert_eq!(list.pop(), Some(7));
        assert_eq!(list.pop(), None, "storm queued the token more than once");
        // After the consumer clears, the next ring re-queues exactly once.
        signal.clear();
        signal.ring();
        signal.ring();
        assert_eq!(list.pop(), Some(7));
        assert_eq!(list.pop(), None);
    }
}
