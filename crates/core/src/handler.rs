//! Handler registration and dispatch.
//!
//! An RSR names a *handler* — the procedure invoked in the destination
//! context with the endpoint and the data buffer as arguments. Handlers are
//! registered per context under string names; dispatch happens inside the
//! context's progress loop (message-driven execution).

use crate::buffer::Buffer;
use crate::context::Context;
use crate::endpoint::EndpointRef;
use crate::fxhash::FxBuildHasher;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Arguments passed to a handler invocation.
pub struct HandlerArgs<'a> {
    /// The context the handler runs in (usable for reply RSRs, creating
    /// endpoints, enquiry, ...).
    pub context: &'a Context,
    /// The endpoint the RSR was addressed to, including any attached local
    /// address/object.
    pub endpoint: EndpointRef,
    /// The sender's data buffer, positioned at the first byte.
    pub buffer: &'a mut Buffer,
}

/// A registered handler procedure.
pub type HandlerFn = Arc<dyn Fn(HandlerArgs<'_>) + Send + Sync>;

/// Name → handler table for one context.
#[derive(Default)]
pub struct HandlerRegistry {
    // Looked up once per delivered RSR; keyed by in-process names, so the
    // unkeyed fast hasher is safe (see `crate::fxhash`).
    handlers: RwLock<HashMap<String, HandlerFn, FxBuildHasher>>,
}

impl HandlerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a handler under `name`.
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(HandlerArgs<'_>) + Send + Sync + 'static,
    {
        self.handlers.write().insert(name.to_owned(), Arc::new(f));
    }

    /// Removes the handler registered under `name`.
    pub fn unregister(&self, name: &str) -> bool {
        self.handlers.write().remove(name).is_some()
    }

    /// Looks up a handler by name.
    pub fn get(&self, name: &str) -> Option<HandlerFn> {
        self.handlers.read().get(name).cloned()
    }

    /// The registered handler names (unordered).
    pub fn names(&self) -> Vec<String> {
        self.handlers.read().keys().cloned().collect()
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.read().len()
    }

    /// True if no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn register_lookup_unregister() {
        let reg = HandlerRegistry::new();
        assert!(reg.is_empty());
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        reg.register("ping", move |_args| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(reg.len(), 1);
        assert!(reg.get("ping").is_some());
        assert!(reg.get("pong").is_none());
        assert!(reg.unregister("ping"));
        assert!(!reg.unregister("ping"));
    }

    #[test]
    fn replacing_a_handler_keeps_one_entry() {
        let reg = HandlerRegistry::new();
        reg.register("h", |_| {});
        reg.register("h", |_| {});
        assert_eq!(reg.len(), 1);
        let mut names = reg.names();
        names.sort();
        assert_eq!(names, vec!["h"]);
    }
}
