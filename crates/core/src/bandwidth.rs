//! Observed-throughput tracking for QoS-aware selection.
//!
//! §3.2 sketches extending automatic selection "by looking at available
//! network bandwidth rather than raw bandwidth before indicating that a
//! module is acceptable". That needs an estimate of what each method is
//! *currently* carrying. [`ThroughputTracker`] derives one from a
//! context's [`Stats`] counters (bytes-sent deltas over sampling
//! intervals, exponentially smoothed), and [`AvailableBandwidth`] turns it
//! plus nominal capacities into the estimator [`QosAware`] consumes.
//!
//! [`QosAware`]: crate::selection::QosAware

use crate::descriptor::MethodId;
use crate::selection::BandwidthEstimator;
use crate::stats::Stats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Exponentially smoothed per-method throughput, fed by stats samples.
#[derive(Debug)]
pub struct ThroughputTracker {
    /// Smoothing factor in (0,1]: 1 = latest interval only.
    alpha: f64,
    state: Mutex<TrackerState>,
}

#[derive(Debug, Default)]
struct TrackerState {
    last_sample: Option<Instant>,
    last_bytes: HashMap<MethodId, u64>,
    estimate: HashMap<MethodId, f64>,
}

impl ThroughputTracker {
    /// Creates a tracker with smoothing factor `alpha` (0 < alpha <= 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        ThroughputTracker {
            alpha,
            state: Mutex::new(TrackerState::default()),
        }
    }

    /// Samples the given stats now (wall clock).
    pub fn sample(&self, stats: &Stats) {
        let now = Instant::now();
        let elapsed = {
            let g = self.state.lock();
            g.last_sample.map(|t| now.duration_since(t).as_secs_f64())
        };
        self.sample_with_elapsed(stats, elapsed.unwrap_or(0.0));
        self.state.lock().last_sample = Some(now);
    }

    /// Samples with an explicit interval (testable; also usable from
    /// simulated time). `elapsed_secs == 0` only records baselines.
    pub fn sample_with_elapsed(&self, stats: &Stats, elapsed_secs: f64) {
        let mut g = self.state.lock();
        let snap = stats.snapshot();
        for (method, s) in snap {
            let last = g.last_bytes.insert(method, s.send_bytes).unwrap_or(0);
            if elapsed_secs > 0.0 {
                let rate = (s.send_bytes.saturating_sub(last)) as f64 / elapsed_secs;
                let e = g.estimate.entry(method).or_insert(rate);
                *e = self.alpha * rate + (1.0 - self.alpha) * *e;
            }
        }
    }

    /// Current estimate for `method` in bytes/sec (0 if never sampled).
    pub fn throughput(&self, method: MethodId) -> f64 {
        self.state
            .lock()
            .estimate
            .get(&method)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Available bandwidth = nominal capacity − observed throughput, exposed
/// as a [`BandwidthEstimator`] for the QoS policy.
pub struct AvailableBandwidth {
    capacities: HashMap<MethodId, f64>,
    tracker: Arc<ThroughputTracker>,
}

impl AvailableBandwidth {
    /// Creates an estimator over `capacities` (bytes/sec per method).
    pub fn new(
        capacities: impl IntoIterator<Item = (MethodId, f64)>,
        tracker: Arc<ThroughputTracker>,
    ) -> Self {
        AvailableBandwidth {
            capacities: capacities.into_iter().collect(),
            tracker,
        }
    }

    /// Available bandwidth for `method` (0 for unknown methods).
    pub fn available(&self, method: MethodId) -> f64 {
        let cap = self.capacities.get(&method).copied().unwrap_or(0.0);
        (cap - self.tracker.throughput(method)).max(0.0)
    }

    /// Converts into the closure form [`crate::selection::QosAware`] takes.
    pub fn into_estimator(self) -> BandwidthEstimator {
        Arc::new(move |m| self.available(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{QosAware, SelectionPolicy};

    #[test]
    fn tracker_measures_rate_from_stats_deltas() {
        let stats = Stats::new();
        let t = ThroughputTracker::new(1.0);
        t.sample_with_elapsed(&stats, 0.0); // baseline
        stats.record_send(MethodId::MPL, 1_000_000);
        t.sample_with_elapsed(&stats, 1.0);
        assert_eq!(t.throughput(MethodId::MPL), 1_000_000.0);
        // Another second with no traffic: rate drops to zero (alpha = 1).
        t.sample_with_elapsed(&stats, 1.0);
        assert_eq!(t.throughput(MethodId::MPL), 0.0);
    }

    #[test]
    fn smoothing_averages_intervals() {
        let stats = Stats::new();
        let t = ThroughputTracker::new(0.5);
        t.sample_with_elapsed(&stats, 0.0);
        stats.record_send(MethodId::TCP, 100);
        t.sample_with_elapsed(&stats, 1.0); // first estimate = 100
        stats.record_send(MethodId::TCP, 300);
        t.sample_with_elapsed(&stats, 1.0); // 0.5*300 + 0.5*100 = 200
        assert_eq!(t.throughput(MethodId::TCP), 200.0);
    }

    #[test]
    fn available_bandwidth_subtracts_load() {
        let stats = Stats::new();
        let tracker = Arc::new(ThroughputTracker::new(1.0));
        tracker.sample_with_elapsed(&stats, 0.0);
        stats.record_send(MethodId::MPL, 30_000_000);
        tracker.sample_with_elapsed(&stats, 1.0);
        let avail = AvailableBandwidth::new(
            [(MethodId::MPL, 36e6), (MethodId::TCP, 8e6)],
            Arc::clone(&tracker),
        );
        assert_eq!(avail.available(MethodId::MPL), 6e6);
        assert_eq!(avail.available(MethodId::TCP), 8e6);
        assert_eq!(avail.available(MethodId::UDP), 0.0);
    }

    #[test]
    fn saturated_method_is_skipped_by_qos_policy() {
        use crate::context::{ContextId, ContextInfo, NodeId, PartitionId};
        use crate::descriptor::DescriptorTable;
        use crate::module::test_support::TestModule;
        use crate::module::{CommModule, ModuleRegistry};

        // MPL carries 35 of its 36 MB/s; the QoS floor of 4 MB/s pushes
        // the next connection to TCP.
        let stats = Stats::new();
        let tracker = Arc::new(ThroughputTracker::new(1.0));
        tracker.sample_with_elapsed(&stats, 0.0);
        stats.record_send(MethodId::MPL, 35_000_000);
        tracker.sample_with_elapsed(&stats, 1.0);
        let est = AvailableBandwidth::new([(MethodId::MPL, 36e6), (MethodId::TCP, 8e6)], tracker)
            .into_estimator();
        let policy = QosAware::new(4e6, est);

        let registry = ModuleRegistry::new();
        let mpl = TestModule::new(MethodId::MPL, "mpl", 10, false);
        let tcp = TestModule::new(MethodId::TCP, "tcp", 30, false);
        let remote = ContextInfo {
            id: ContextId(9),
            node: NodeId(9),
            partition: PartitionId(1),
        };
        let (d1, _r1) = mpl.open(&remote).unwrap();
        let (d2, _r2) = tcp.open(&remote).unwrap();
        registry.register(Arc::new(mpl));
        registry.register(Arc::new(tcp));
        let table: DescriptorTable = [d1, d2].into_iter().collect();
        let local = ContextInfo {
            id: ContextId(1),
            node: NodeId(1),
            partition: PartitionId(1),
        };
        assert_eq!(
            policy.select(&local, &table, &registry),
            Some(MethodId::TCP),
            "36-35=1 MB/s available on MPL < 4 MB/s floor; TCP has 8"
        );
    }
}
