//! Startpoints: the mobile, sending side of a communication link.
//!
//! A communication link connects a *startpoint* to one or more *endpoints*
//! (§2.2). Startpoints can be copied between contexts — copying creates new
//! links mirroring the original's — which makes them usable as global names
//! for remote objects. A startpoint carries, per link:
//!
//! * the target (context id + endpoint id),
//! * the target context's [`DescriptorTable`] (so the holder knows every
//!   method usable to reach it), and
//! * the *communication object* currently selected for the link, plus an
//!   optional manual method pin.
//!
//! Binding a startpoint to several endpoints turns an RSR into a multicast;
//! binding several startpoints to one endpoint merges their traffic.
//!
//! The descriptor table makes startpoints heavyweight (a few tens of
//! bytes). For tightly coupled systems the *lightweight* representation
//! omits the table on the wire; the receiver reconstructs it from the
//! fabric's knowledge of the target context (§3.1's "default descriptor
//! table" optimization).

use crate::buffer::Buffer;
use crate::context::{Context, ContextId};
use crate::descriptor::{DescriptorTable, MethodId};
use crate::endpoint::EndpointId;
use crate::error::{NexusError, Result};
use crate::module::CommObject;
use crate::stats::MethodCounters;
use crate::trace::LinkMethodTrace;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The destination of one communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    /// Context holding the endpoint.
    pub context: ContextId,
    /// The endpoint within that context.
    pub endpoint: EndpointId,
}

/// A link's resolved selection: the method, its live connection, and the
/// cached recording handles (per-method counters, per-`(link, method)`
/// trace) that make the send hot path lock-free. Built by the context when
/// it (re)selects a method for the link.
#[derive(Clone)]
pub(crate) struct SelectedMethod {
    /// The selected method.
    pub(crate) method: MethodId,
    /// The live communication object.
    pub(crate) obj: Arc<dyn CommObject>,
    /// The selecting context's counters for `method`.
    pub(crate) counters: Arc<MethodCounters>,
    /// The selecting context's trace for `(target, method)`.
    pub(crate) ltrace: Arc<LinkMethodTrace>,
}

/// Cost-driven re-selection scratch for one link: the sampling countdown
/// plus the consecutive-candidate streak that implements the hysteresis
/// (see `selection::ReselectConfig`).
#[derive(Debug, Default)]
pub(crate) struct ReselectState {
    /// Successful sends since the last cost check.
    pub(crate) sends_since_check: u64,
    /// The cheaper method observed on recent consecutive checks.
    pub(crate) candidate: Option<MethodId>,
    /// How many consecutive checks agreed on `candidate`.
    pub(crate) streak: u32,
}

/// One communication link within a startpoint.
pub struct Link {
    /// Where this link points.
    pub target: Target,
    /// The methods usable to reach the target, in selection priority order.
    /// Mutable: editing it is the manual-selection lever (§3.2).
    pub(crate) table: Mutex<DescriptorTable>,
    /// Manual method pin, if any.
    pub(crate) pinned: Mutex<Option<MethodId>>,
    /// The selection currently in force for this link.
    // Arc so the send path hands out the whole selection with one
    // refcount bump instead of cloning each cached handle inside.
    pub(crate) chosen: Mutex<Option<Arc<SelectedMethod>>>,
    /// Cost-driven re-selection streak state.
    pub(crate) reselect: Mutex<ReselectState>,
    /// Sends currently in flight on the link's selected object; migration
    /// drains this to zero before retiring the old object.
    pub(crate) inflight: AtomicU64,
    /// Pack without the descriptor table (receiver reconstructs it).
    pub(crate) lightweight: bool,
    /// Payloads strictly larger than this go out as a bulk handle the
    /// receiver pulls (`Context::rsr_bulk`), instead of an inline body.
    /// `usize::MAX` (the default) keeps every send eager.
    pub(crate) rendezvous_cutoff: AtomicUsize,
}

impl Link {
    pub(crate) fn new(target: Target, table: DescriptorTable, lightweight: bool) -> Self {
        Link {
            target,
            table: Mutex::new(table),
            pinned: Mutex::new(None),
            chosen: Mutex::new(None),
            reselect: Mutex::new(ReselectState::default()),
            inflight: AtomicU64::new(0),
            lightweight,
            rendezvous_cutoff: AtomicUsize::new(usize::MAX),
        }
    }

    /// The method currently selected for this link, if one has been chosen.
    pub fn current_method(&self) -> Option<MethodId> {
        self.chosen.lock().as_ref().map(|s| s.method)
    }

    /// The link's eager/rendezvous cutoff: payloads strictly larger than
    /// this are sent as a pull handle by [`crate::context::Context::rsr_bulk`].
    pub fn rendezvous_cutoff(&self) -> usize {
        self.rendezvous_cutoff.load(Ordering::Relaxed)
    }

    /// Snapshot of the link's descriptor table.
    pub fn table(&self) -> DescriptorTable {
        self.table.lock().clone()
    }

    /// Invalidate the current selection (forces re-selection on next use).
    pub(crate) fn invalidate(&self) {
        *self.chosen.lock() = None;
        *self.reselect.lock() = ReselectState::default();
    }

    /// Marks one send as in flight on the current selection.
    pub(crate) fn send_begin(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks an in-flight send as finished. Release-ordered so a drainer
    /// that acquires `inflight == 0` observes the completed send.
    pub(crate) fn send_end(&self) {
        self.inflight.fetch_sub(1, Ordering::Release);
    }

    /// Sends currently in flight on this link.
    pub(crate) fn sends_in_flight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }
}

impl Clone for Link {
    /// Mirrors the link: same target and table, but *no* selection state —
    /// the receiving/copying context performs its own method selection.
    fn clone(&self) -> Self {
        Link {
            target: self.target,
            table: Mutex::new(self.table.lock().clone()),
            pinned: Mutex::new(*self.pinned.lock()),
            chosen: Mutex::new(None),
            reselect: Mutex::new(ReselectState::default()),
            inflight: AtomicU64::new(0),
            lightweight: self.lightweight,
            rendezvous_cutoff: AtomicUsize::new(self.rendezvous_cutoff.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("target", &self.target)
            .field("methods", &self.table.lock().methods())
            .field("pinned", &*self.pinned.lock())
            .field("chosen", &self.current_method())
            .field("lightweight", &self.lightweight)
            .finish()
    }
}

/// The mobile sending side of one or more communication links.
///
/// A startpoint's selection state (the chosen communication object per
/// link) belongs to the context *using* it. When handing a startpoint to
/// another context — whether in-process or over the wire — clone or
/// pack/unpack it: both mirror the links and let the receiving context
/// perform its own selection, exactly the paper's copy semantics.
#[derive(Debug, Default)]
pub struct Startpoint {
    links: Vec<Link>,
}

impl Clone for Startpoint {
    fn clone(&self) -> Self {
        Startpoint {
            links: self.links.clone(),
        }
    }
}

impl Startpoint {
    /// Creates an unbound startpoint (no links).
    pub fn unbound() -> Self {
        Self::default()
    }

    /// True if the startpoint has no links.
    pub fn is_unbound(&self) -> bool {
        self.links.is_empty()
    }

    /// The links, in binding order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link targets, in binding order.
    pub fn targets(&self) -> Vec<Target> {
        self.links.iter().map(|l| l.target).collect()
    }

    pub(crate) fn add_link(&mut self, link: Link) {
        self.links.push(link);
    }

    /// Merges another startpoint's links into this one (multicast
    /// construction: the startpoint becomes bound to every endpoint of
    /// both). Duplicate targets are kept once.
    pub fn merge(&mut self, other: &Startpoint) {
        for l in &other.links {
            if !self.links.iter().any(|x| x.target == l.target) {
                self.links.push(l.clone());
            }
        }
    }

    /// Removes the link to `target`, returning whether it existed.
    pub fn unbind(&mut self, target: Target) -> bool {
        let before = self.links.len();
        self.links.retain(|l| l.target != target);
        before != self.links.len()
    }

    // -- manual selection ---------------------------------------------------

    /// Pins every link to `method`. The pin is checked for applicability at
    /// the next RSR; an inapplicable pin yields
    /// [`NexusError::MethodNotApplicable`].
    pub fn set_method(&self, method: MethodId) {
        for l in &self.links {
            *l.pinned.lock() = Some(method);
            l.invalidate();
        }
    }

    /// Pins the link to `target` to `method`.
    pub fn set_method_for(&self, target: Target, method: MethodId) -> bool {
        match self.links.iter().find(|l| l.target == target) {
            Some(l) => {
                *l.pinned.lock() = Some(method);
                l.invalidate();
                true
            }
            None => false,
        }
    }

    /// Clears all pins, returning links to automatic selection.
    pub fn clear_method(&self) {
        for l in &self.links {
            *l.pinned.lock() = None;
            l.invalidate();
        }
    }

    /// Edits the descriptor table of the link to `target` (reorder, add,
    /// delete entries). Invalidates the link's current selection.
    pub fn edit_table<F: FnOnce(&mut DescriptorTable)>(&self, target: Target, f: F) -> bool {
        match self.links.iter().find(|l| l.target == target) {
            Some(l) => {
                f(&mut l.table.lock());
                l.invalidate();
                true
            }
            None => false,
        }
    }

    /// Sets a parameter on every currently selected communication object
    /// (e.g. `"sockbuf"` on TCP links). Links with no selection yet are
    /// skipped; the first error is returned.
    pub fn set_param(&self, key: &str, value: &str) -> Result<()> {
        for l in &self.links {
            let obj = l.chosen.lock().as_ref().map(|s| Arc::clone(&s.obj));
            if let Some(obj) = obj {
                obj.set_param(key, value)?;
            }
        }
        Ok(())
    }

    /// Enquiry: the currently selected method per link (None = not yet
    /// selected).
    pub fn current_methods(&self) -> Vec<(Target, Option<MethodId>)> {
        self.links
            .iter()
            .map(|l| (l.target, l.current_method()))
            .collect()
    }

    // -- wire format ---------------------------------------------------------

    /// Serializes the startpoint into a buffer, so it can be shipped inside
    /// an RSR payload. Lightweight links omit their descriptor table.
    pub fn pack(&self, buf: &mut Buffer) {
        buf.put_u16(self.links.len() as u16);
        for l in &self.links {
            buf.put_u32(l.target.context.0);
            buf.put_u64(l.target.endpoint.0);
            if l.lightweight {
                buf.put_u8(0);
            } else {
                buf.put_u8(1);
                l.table.lock().encode(buf);
            }
        }
    }

    /// Reconstructs a startpoint packed by [`Startpoint::pack`]. The
    /// receiving context is needed to resolve lightweight links (their
    /// table is looked up from the fabric's knowledge of the target
    /// context).
    pub fn unpack(buf: &mut Buffer, receiver: &Context) -> Result<Startpoint> {
        Self::unpack_impl(buf, Some(receiver))
    }

    /// Reconstructs a startpoint without any fabric context — for
    /// startpoints that crossed a *process* boundary (shipped as bytes
    /// through argv, a file, or another channel) and will be used from a
    /// different fabric. Only heavyweight links can be resolved this way;
    /// a lightweight link's table lives in the sender's fabric and is an
    /// error here.
    pub fn unpack_standalone(buf: &mut Buffer) -> Result<Startpoint> {
        Self::unpack_impl(buf, None)
    }

    fn unpack_impl(buf: &mut Buffer, receiver: Option<&Context>) -> Result<Startpoint> {
        let n = buf.get_u16()? as usize;
        if n > 4096 {
            return Err(NexusError::Decode("startpoint link count too large"));
        }
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let ctx = ContextId(buf.get_u32()?);
            let ep = EndpointId(buf.get_u64()?);
            let has_table = buf.get_u8()? != 0;
            let (table, lightweight) = if has_table {
                (DescriptorTable::decode(buf)?, false)
            } else {
                let receiver = receiver.ok_or(NexusError::Decode(
                    "lightweight startpoint cannot cross a process boundary",
                ))?;
                (receiver.lookup_descriptor_table(ctx)?, true)
            };
            links.push(Link::new(
                Target {
                    context: ctx,
                    endpoint: ep,
                },
                table,
                lightweight,
            ));
        }
        Ok(Startpoint { links })
    }

    /// Wire size of [`Startpoint::pack`]'s output.
    pub fn wire_len(&self) -> usize {
        2 + self
            .links
            .iter()
            .map(|l| {
                4 + 8
                    + 1
                    + if l.lightweight {
                        0
                    } else {
                        l.table.lock().wire_len()
                    }
            })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::CommDescriptor;

    fn table() -> DescriptorTable {
        [
            CommDescriptor::new(MethodId::MPL, b"m".to_vec()),
            CommDescriptor::new(MethodId::TCP, b"t".to_vec()),
        ]
        .into_iter()
        .collect()
    }

    fn sp(ctx: u32, ep: u64) -> Startpoint {
        let mut s = Startpoint::unbound();
        s.add_link(Link::new(
            Target {
                context: ContextId(ctx),
                endpoint: EndpointId(ep),
            },
            table(),
            false,
        ));
        s
    }

    #[test]
    fn unbound_startpoint_has_no_targets() {
        let s = Startpoint::unbound();
        assert!(s.is_unbound());
        assert!(s.targets().is_empty());
    }

    #[test]
    fn merge_builds_multicast_and_dedups() {
        let mut a = sp(1, 10);
        let b = sp(2, 20);
        a.merge(&b);
        a.merge(&b); // duplicate merge is a no-op
        assert_eq!(a.targets().len(), 2);
        assert_eq!(
            a.targets(),
            vec![
                Target {
                    context: ContextId(1),
                    endpoint: EndpointId(10)
                },
                Target {
                    context: ContextId(2),
                    endpoint: EndpointId(20)
                },
            ]
        );
    }

    #[test]
    fn unbind_removes_target() {
        let mut a = sp(1, 10);
        let b = sp(2, 20);
        a.merge(&b);
        assert!(a.unbind(Target {
            context: ContextId(1),
            endpoint: EndpointId(10)
        }));
        assert_eq!(a.targets().len(), 1);
        assert!(!a.unbind(Target {
            context: ContextId(9),
            endpoint: EndpointId(9)
        }));
    }

    #[test]
    fn clone_mirrors_links_but_resets_selection() {
        let a = sp(1, 10);
        // Simulate a selection by pinning (chosen itself needs a comm
        // object; the pin path is observable without one).
        a.set_method(MethodId::TCP);
        let c = a.clone();
        assert_eq!(c.targets(), a.targets());
        assert_eq!(*c.links()[0].pinned.lock(), Some(MethodId::TCP));
        assert!(c.links()[0].current_method().is_none());
    }

    #[test]
    fn set_method_for_targets_one_link() {
        let mut a = sp(1, 10);
        a.merge(&sp(2, 20));
        let t2 = Target {
            context: ContextId(2),
            endpoint: EndpointId(20),
        };
        assert!(a.set_method_for(t2, MethodId::TCP));
        assert_eq!(*a.links()[0].pinned.lock(), None);
        assert_eq!(*a.links()[1].pinned.lock(), Some(MethodId::TCP));
        a.clear_method();
        assert_eq!(*a.links()[1].pinned.lock(), None);
    }

    #[test]
    fn edit_table_invalidates_selection() {
        let a = sp(1, 10);
        let t = a.targets()[0];
        assert!(a.edit_table(t, |tab| {
            tab.prioritize(MethodId::TCP);
        }));
        assert_eq!(a.links()[0].table().methods()[0], MethodId::TCP);
        assert!(!a.edit_table(
            Target {
                context: ContextId(99),
                endpoint: EndpointId(0)
            },
            |_| {}
        ));
    }

    #[test]
    fn pack_wire_len_matches() {
        let mut a = sp(1, 10);
        a.merge(&sp(2, 20));
        let mut buf = Buffer::new();
        a.pack(&mut buf);
        assert_eq!(buf.len(), a.wire_len());
    }

    #[test]
    fn heavyweight_vs_lightweight_size() {
        let heavy = sp(1, 10);
        let mut light = Startpoint::unbound();
        light.add_link(Link::new(
            Target {
                context: ContextId(1),
                endpoint: EndpointId(10),
            },
            table(),
            true,
        ));
        assert!(light.wire_len() < heavy.wire_len());
        // The lightweight form is exactly the fixed header.
        assert_eq!(light.wire_len(), 2 + 4 + 8 + 1);
    }
}
