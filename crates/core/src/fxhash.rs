//! A fast, non-cryptographic hasher for hot-path lookup tables.
//!
//! The default `HashMap` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which costs ~15–20 ns per small key. The RSR data path performs two map
//! lookups per delivered message — handler name and destination endpoint —
//! on keys the application itself registered, so collision attacks are not
//! a concern and the multiply-rotate scheme below (the same one rustc uses
//! internally) is an order of magnitude cheaper.
//!
//! Use [`FxBuildHasher`] as the `S` parameter of `HashMap`/`HashSet` for
//! tables that sit on the send/receive hot path and are keyed by trusted,
//! in-process values.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (a 64-bit odd constant
/// with well-mixed bits; the exact value matches rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher. Not keyed, not collision-resistant — only for
/// tables whose keys come from this process, never from the network.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice; the tail is zero-padded into one
        // final word. Short keys (handler names, ids) take 1–2 rounds.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0_u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
            // Distinguish "short key" from "key with trailing zeros".
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s, for `HashMap::with_hasher` or as
/// the map's type-level default.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&"bench"), hash_of(&"bench"));
        assert_eq!(hash_of(&42_u64), hash_of(&42_u64));
    }

    #[test]
    fn nearby_keys_spread() {
        // Not a statistical test — just catches a degenerate hasher that
        // maps everything to a handful of values.
        let hs: std::collections::HashSet<u64> = (0_u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hs.len(), 1000);
    }

    #[test]
    fn tail_length_matters() {
        // A short key must not collide with itself zero-extended.
        assert_ne!(hash_of(&[1_u8, 2]), hash_of(&[1_u8, 2, 0]));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: HashMap<String, u32, FxBuildHasher> = HashMap::default();
        m.insert("a".to_owned(), 1);
        m.insert("b".to_owned(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("b"), Some(&2));
        assert_eq!(m.get("c"), None);
    }
}
