//! Global pointers: remote read/write through startpoints.
//!
//! §2.2: "A local address can be associated with an endpoint, in which
//! case any startpoint associated with the endpoint can be thought of as a
//! 'global pointer' to that address." The related-work section points at
//! Split-C's global pointers with remote put/get. This module makes that
//! idiom first-class: a [`GlobalCell`] is an endpoint with an attached
//! byte buffer plus auto-registered handlers, and a [`GlobalPointer`] is a
//! startpoint wrapper with `read` / `write` / `fetch_add_f64` operations —
//! each implemented as an RSR roundtrip, over whatever communication
//! method selection picks for the link.

use crate::buffer::Buffer;
use crate::context::Context;
use crate::endpoint::EndpointId;
use crate::error::{NexusError, Result};
use crate::startpoint::Startpoint;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handler names used by the protocol (registered once per context).
const H_READ: &str = "_nexus.gp.read";
const H_WRITE: &str = "_nexus.gp.write";
const H_FADD: &str = "_nexus.gp.fadd";
const H_REPLY: &str = "_nexus.gp.reply";

/// The storage an endpoint exposes to remote readers/writers.
#[derive(Debug, Default)]
pub struct CellStorage {
    data: Mutex<Vec<u8>>,
}

impl CellStorage {
    /// Reads the current contents.
    pub fn get(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Replaces the contents.
    pub fn set(&self, v: Vec<u8>) {
        *self.data.lock() = v;
    }

    /// Interprets the contents as one `f64` and adds `x` to it, returning
    /// the previous value. Errors if the cell is not 8 bytes.
    fn fetch_add_f64(&self, x: f64) -> Result<f64> {
        let mut g = self.data.lock();
        if g.len() != 8 {
            return Err(NexusError::Decode("cell is not an f64"));
        }
        let old = f64::from_le_bytes(g[..8].try_into().unwrap());
        g[..8].copy_from_slice(&(old + x).to_le_bytes());
        Ok(old)
    }
}

/// A context-local cell readable and writable through global pointers.
pub struct GlobalCell {
    storage: Arc<CellStorage>,
    endpoint: EndpointId,
}

impl GlobalCell {
    /// Creates a cell in `ctx` with initial contents, installing the
    /// protocol handlers if they are not present yet.
    pub fn new(ctx: &Arc<Context>, initial: Vec<u8>) -> Result<GlobalCell> {
        ensure_handlers(ctx);
        let storage = Arc::new(CellStorage::default());
        storage.set(initial);
        let endpoint = ctx.create_endpoint();
        ctx.attach(endpoint, Arc::clone(&storage) as _)?;
        Ok(GlobalCell { storage, endpoint })
    }

    /// Creates a cell holding one `f64`.
    pub fn new_f64(ctx: &Arc<Context>, v: f64) -> Result<GlobalCell> {
        Self::new(ctx, v.to_le_bytes().to_vec())
    }

    /// Local access to the storage.
    pub fn storage(&self) -> &CellStorage {
        &self.storage
    }

    /// A global pointer to this cell (heavyweight startpoint).
    pub fn pointer(&self, ctx: &Context) -> Result<GlobalPointer> {
        Ok(GlobalPointer {
            sp: ctx.startpoint_to(self.endpoint)?,
        })
    }
}

/// Installs the global-pointer protocol handlers in a context (idempotent).
pub fn ensure_handlers(ctx: &Arc<Context>) {
    if ctx.handlers().get(H_READ).is_some() {
        return;
    }
    // read: [reply_sp, token] -> reply(token, bytes)
    ctx.register_handler(H_READ, |args| {
        let storage = args
            .endpoint
            .attached_as::<CellStorage>()
            .expect("gp endpoint has storage");
        let reply_sp =
            Startpoint::unpack(args.buffer, args.context).expect("read carries reply sp");
        let token = args.buffer.get_u64().expect("read carries token");
        let mut out = Buffer::new();
        out.put_u64(token);
        out.put_blob(&storage.get());
        let _ = args.context.rsr(&reply_sp, H_REPLY, out);
    });
    // write: [reply_sp, token, bytes] -> reply(token, []) (ack)
    ctx.register_handler(H_WRITE, |args| {
        let storage = args
            .endpoint
            .attached_as::<CellStorage>()
            .expect("gp endpoint has storage");
        let reply_sp =
            Startpoint::unpack(args.buffer, args.context).expect("write carries reply sp");
        let token = args.buffer.get_u64().expect("write carries token");
        let bytes = args.buffer.get_blob().expect("write carries payload");
        storage.set(bytes.to_vec());
        let mut out = Buffer::new();
        out.put_u64(token);
        out.put_blob(&[]);
        let _ = args.context.rsr(&reply_sp, H_REPLY, out);
    });
    // fadd: [reply_sp, token, x] -> reply(token, old_value)
    ctx.register_handler(H_FADD, |args| {
        let storage = args
            .endpoint
            .attached_as::<CellStorage>()
            .expect("gp endpoint has storage");
        let reply_sp =
            Startpoint::unpack(args.buffer, args.context).expect("fadd carries reply sp");
        let token = args.buffer.get_u64().expect("fadd carries token");
        let x = args.buffer.get_f64().expect("fadd carries addend");
        let mut out = Buffer::new();
        out.put_u64(token);
        match storage.fetch_add_f64(x) {
            Ok(old) => out.put_blob(&old.to_le_bytes()),
            Err(_) => out.put_blob(&[]),
        }
        let _ = args.context.rsr(&reply_sp, H_REPLY, out);
    });
    // reply: deposit into the caller's pending-reply table.
    ctx.register_handler(H_REPLY, |args| {
        let table = args
            .endpoint
            .attached_as::<ReplyTable>()
            .expect("reply endpoint has table");
        let token = args.buffer.get_u64().expect("reply carries token");
        let bytes = args.buffer.get_blob().expect("reply carries payload");
        table.complete(token, bytes.to_vec());
    });
}

/// Pending synchronous operations awaiting replies.
#[derive(Default)]
struct ReplyTable {
    next_token: AtomicU64,
    done: Mutex<std::collections::HashMap<u64, Vec<u8>>>,
}

impl ReplyTable {
    fn begin(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    fn complete(&self, token: u64, bytes: Vec<u8>) {
        self.done.lock().insert(token, bytes);
    }

    fn try_take(&self, token: u64) -> Option<Vec<u8>> {
        self.done.lock().remove(&token)
    }
}

/// A remote-readable, remote-writable reference to a [`GlobalCell`].
pub struct GlobalPointer {
    sp: Startpoint,
}

impl Clone for GlobalPointer {
    fn clone(&self) -> Self {
        GlobalPointer {
            sp: self.sp.clone(),
        }
    }
}

impl GlobalPointer {
    /// Wraps an already-obtained startpoint (e.g. one that travelled in a
    /// buffer).
    pub fn from_startpoint(sp: Startpoint) -> GlobalPointer {
        GlobalPointer { sp }
    }

    /// The underlying startpoint (for packing, pinning, table edits).
    pub fn startpoint(&self) -> &Startpoint {
        &self.sp
    }

    fn roundtrip(
        &self,
        ctx: &Arc<Context>,
        handler: &str,
        extra: impl FnOnce(&mut Buffer),
    ) -> Result<Vec<u8>> {
        ensure_handlers(ctx);
        // Per-context reply plumbing, created on first use.
        let table = reply_table(ctx)?;
        let token = table.0.begin();
        let mut buf = Buffer::new();
        let reply_sp = ctx.startpoint_to(table.1)?;
        reply_sp.pack(&mut buf);
        buf.put_u64(token);
        extra(&mut buf);
        ctx.rsr(&self.sp, handler, buf)?;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(bytes) = table.0.try_take(token) {
                return Ok(bytes);
            }
            ctx.progress()?;
            if Instant::now() >= deadline {
                return Err(NexusError::Timeout {
                    what: format!("global-pointer {handler} reply"),
                });
            }
            std::thread::yield_now();
        }
    }

    /// Reads the remote cell's bytes.
    pub fn read(&self, ctx: &Arc<Context>) -> Result<Vec<u8>> {
        self.roundtrip(ctx, H_READ, |_| {})
    }

    /// Reads the remote cell as an `f64`.
    pub fn read_f64(&self, ctx: &Arc<Context>) -> Result<f64> {
        let b = self.read(ctx)?;
        if b.len() != 8 {
            return Err(NexusError::Decode("cell is not an f64"));
        }
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Overwrites the remote cell (acknowledged).
    pub fn write(&self, ctx: &Arc<Context>, bytes: &[u8]) -> Result<()> {
        self.roundtrip(ctx, H_WRITE, |buf| buf.put_blob(bytes))
            .map(|_| ())
    }

    /// Writes the remote cell as an `f64` (acknowledged).
    pub fn write_f64(&self, ctx: &Arc<Context>, v: f64) -> Result<()> {
        self.write(ctx, &v.to_le_bytes())
    }

    /// Atomically adds to the remote `f64` cell, returning the previous
    /// value (atomic with respect to other global-pointer operations on
    /// the same cell: the owning context serializes handler execution).
    pub fn fetch_add_f64(&self, ctx: &Arc<Context>, x: f64) -> Result<f64> {
        let b = self.roundtrip(ctx, H_FADD, |buf| buf.put_f64(x))?;
        if b.len() != 8 {
            return Err(NexusError::Decode("cell is not an f64"));
        }
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Per-context global-pointer plumbing, stored as a context extension.
struct GpPlumbing {
    table: Arc<ReplyTable>,
    endpoint: EndpointId,
}

/// Returns (creating on first use) the context's reply table + endpoint.
fn reply_table(ctx: &Arc<Context>) -> Result<(Arc<ReplyTable>, EndpointId)> {
    let plumbing = ctx.extension(|| {
        let table = Arc::new(ReplyTable::default());
        let endpoint = ctx.create_endpoint();
        ctx.attach(endpoint, Arc::clone(&table) as _)
            .expect("endpoint just created");
        GpPlumbing { table, endpoint }
    });
    Ok((Arc::clone(&plumbing.table), plumbing.endpoint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fabric;
    use crate::descriptor::MethodId;
    use crate::module::test_support::TestModule;

    fn fabric() -> Fabric {
        let f = Fabric::new();
        f.registry().register(Arc::new(TestModule::new(
            MethodId::SHMEM,
            "shmem",
            5,
            false,
        )));
        f
    }

    #[test]
    fn read_and_write_through_a_pointer() {
        let f = fabric();
        let owner = f.create_context().unwrap();
        let user = f.create_context().unwrap();
        let cell = GlobalCell::new(&owner, b"initial".to_vec()).unwrap();
        let gp = cell.pointer(&owner).unwrap();
        let _guard = owner.spawn_progress_thread();
        assert_eq!(gp.read(&user).unwrap(), b"initial");
        gp.write(&user, b"updated").unwrap();
        assert_eq!(gp.read(&user).unwrap(), b"updated");
        assert_eq!(cell.storage().get(), b"updated");
        f.shutdown();
    }

    #[test]
    fn f64_cell_fetch_add_serializes() {
        let f = fabric();
        let owner = f.create_context().unwrap();
        let cell = GlobalCell::new_f64(&owner, 10.0).unwrap();
        let gp = cell.pointer(&owner).unwrap();
        let _guard = owner.spawn_progress_thread();
        // Two user contexts increment concurrently; the owner's handler
        // serialization makes the cell's final value exact.
        std::thread::scope(|s| {
            for _ in 0..2 {
                let user = f.create_context().unwrap();
                let gp = gp.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        gp.fetch_add_f64(&user, 1.0).unwrap();
                    }
                });
            }
        });
        let check = f.create_context().unwrap();
        assert_eq!(gp.read_f64(&check).unwrap(), 60.0);
        f.shutdown();
    }

    #[test]
    fn pointer_travels_inside_an_rsr() {
        let f = fabric();
        let owner = f.create_context().unwrap();
        let peer = f.create_context().unwrap();
        let cell = GlobalCell::new_f64(&owner, 5.0).unwrap();
        let gp = cell.pointer(&owner).unwrap();
        // Ship the pointer to the peer inside a message; the peer reads
        // through it (the "global name" usage of §2.2).
        let observed = Arc::new(Mutex::new(None));
        {
            let obs = Arc::clone(&observed);
            let peer_for_handler: Arc<Context> = Arc::clone(&peer);
            peer.register_handler("use-gp", move |args| {
                let sp = Startpoint::unpack(args.buffer, args.context).unwrap();
                let gp = GlobalPointer::from_startpoint(sp);
                let v = gp.read_f64(&peer_for_handler).unwrap();
                *obs.lock() = Some(v);
            });
        }
        let ep = peer.create_endpoint();
        let sp_to_peer = peer.startpoint_to(ep).unwrap();
        let mut buf = Buffer::new();
        gp.startpoint().pack(&mut buf);
        let _guard = owner.spawn_progress_thread();
        owner.rsr(&sp_to_peer, "use-gp", buf).unwrap();
        assert!(peer.progress_until(|| observed.lock().is_some(), Duration::from_secs(5)));
        assert_eq!(*observed.lock(), Some(5.0));
        f.shutdown();
    }

    #[test]
    fn type_errors_are_reported() {
        let f = fabric();
        let owner = f.create_context().unwrap();
        let cell = GlobalCell::new(&owner, b"not-a-float".to_vec()).unwrap();
        let gp = cell.pointer(&owner).unwrap();
        let user = f.create_context().unwrap();
        let _guard = owner.spawn_progress_thread();
        assert!(gp.read_f64(&user).is_err());
        assert!(gp.fetch_add_f64(&user, 1.0).is_err());
        f.shutdown();
    }
}
