//! # nexus-rt: multimethod communication runtime
//!
//! A Rust reproduction of the multimethod communication architecture of the
//! Nexus runtime system (Foster, Geisler, Kesselman, Tuecke, *Multimethod
//! Communication for High-Performance Metacomputing Applications*, SC '96).
//!
//! The architecture lets one application use several low-level
//! communication methods *simultaneously and transparently*: programmers
//! express communication as asynchronous **remote service requests** over
//! **communication links** (a mobile [`startpoint::Startpoint`] bound to
//! one or more [`endpoint`]s), while the method used for each link — MPL,
//! TCP, shared memory, UDP, ... — is chosen per link, automatically
//! (ordered "fastest first" scan of a mobile descriptor table) or manually
//! (pins, table edits, parameters).
//!
//! ## Quick tour
//!
//! ```
//! use nexus_rt::prelude::*;
//! use nexus_rt::module::test_support::TestModule;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! // A fabric holds contexts (address spaces) and communication modules.
//! // This example uses the built-in toy queue module; real applications
//! // register modules from `nexus-transports` (shmem, mpl, tcp, udp...).
//! let fabric = Fabric::new();
//! fabric
//!     .registry()
//!     .register(Arc::new(TestModule::new(MethodId::SHMEM, "shmem", 1, false)));
//! let a = fabric.create_context().unwrap();
//! let b = fabric.create_context().unwrap();
//!
//! // b exposes an endpoint with a handler; a gets a startpoint to it.
//! let hits = Arc::new(AtomicU32::new(0));
//! let h = Arc::clone(&hits);
//! b.register_handler("hello", move |mut args| {
//!     assert_eq!(args.buffer.get_u32().unwrap(), 7);
//!     h.fetch_add(1, Ordering::Relaxed);
//! });
//! let ep = b.create_endpoint();
//! let sp = b.startpoint_to(ep).unwrap();
//!
//! // An RSR: ship a buffer, invoke the handler remotely.
//! let mut buf = Buffer::new();
//! buf.put_u32(7);
//! a.rsr(&sp, "hello", buf).unwrap();
//! b.progress().unwrap(); // message-driven execution
//! assert_eq!(hits.load(Ordering::Relaxed), 1);
//! ```
//!
//! ## Module map
//!
//! | module | role |
//! |--------|------|
//! | [`buffer`] | typed put/get data buffers (the RSR payload) |
//! | [`bandwidth`] | observed-throughput tracking for QoS-aware selection |
//! | [`bulk`] | eager/rendezvous bulk protocol: pull-based zero-copy handles |
//! | [`context`] | contexts, the fabric, RSR issue/dispatch, forwarding |
//! | [`descriptor`] | method ids, communication descriptors, mobile tables |
//! | [`endpoint`] | receive side of links, attached local objects |
//! | [`startpoint`] | mobile send side: links, multicast, manual selection |
//! | [`module`] | the `CommModule` function-table trait + registry/loaders |
//! | [`selection`] | automatic/manual/QoS selection policies + enquiry |
//! | [`poll`] | unified polling, `skip_poll`, blocking pollers |
//! | [`shard`] | sharded multi-worker servicing of the readiness tier |
//! | [`pool`] | thread-local frame-buffer reuse for the send path |
//! | [`rsr`] | RSR wire format: encode-once frames, zero-copy decode |
//! | [`handler`] | handler registration and dispatch |
//! | [`gp`] | global pointers: remote read/write/fetch-add through startpoints |
//! | [`stripe`] | multi-link striped bulk transfer (rail pattern) |
//! | [`stats`] | per-method counters for the enquiry functions |
//! | [`trace`] | per-link histograms, measured poll-cost EWMAs, event ring |
//! | [`config`] | resource database + command-line overrides |

#![warn(missing_docs)]

pub mod bandwidth;
pub mod buffer;
pub mod bulk;
pub mod config;
pub mod context;
pub mod descriptor;
pub mod endpoint;
pub mod error;
pub mod fxhash;
pub mod gp;
pub mod handler;
pub mod module;
pub mod poll;
pub mod pool;
pub mod rsr;
pub mod selection;
pub mod shard;
pub mod startpoint;
pub mod stats;
pub mod stripe;
pub mod trace;

/// Convenience re-exports for application code.
pub mod prelude {
    pub use crate::buffer::Buffer;
    pub use crate::bulk::{BulkHandle, BulkRegistry, PullGuard};
    pub use crate::config::RtConfig;
    pub use crate::context::{
        Context, ContextId, ContextInfo, ContextOpts, Fabric, ForwardVia, NodeId, PartitionId,
    };
    pub use crate::descriptor::{CommDescriptor, DescriptorTable, MethodId};
    pub use crate::endpoint::{EndpointId, EndpointRef};
    pub use crate::error::{NexusError, Result};
    pub use crate::gp::{GlobalCell, GlobalPointer};
    pub use crate::handler::HandlerArgs;
    pub use crate::module::{CommModule, CommObject, CommReceiver, ModuleRegistry};
    pub use crate::poll::{AdaptiveSkipPoll, PollOutcome, Probe, SkipChange};
    pub use crate::selection::{
        applicable_methods, method_cost_estimate, ExcludeMethods, FirstApplicable,
        MethodCostEstimate, QosAware, SelectionPolicy,
    };
    pub use crate::shard::{ShardSnapshot, WorkerPool};
    pub use crate::startpoint::{Startpoint, Target};
    pub use crate::stats::{MethodSnapshot, Stats};
    pub use crate::stripe::{weighted_shares, StripeAssembler, StripeRail, StripedObject};
    pub use crate::trace::{
        Ewma, HistogramSummary, LogHistogram, Trace, TraceEvent, TraceEventKind,
    };
}
