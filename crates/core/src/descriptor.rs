//! Communication descriptors and descriptor tables.
//!
//! A *communication descriptor* carries the information a communication
//! module needs in order to reach a specific context: for the MPL-style
//! module a partition id and node number, for TCP a socket address, and so
//! on (§3.1 of the paper). Descriptors are grouped into an ordered
//! [`DescriptorTable`], which is the concise, mobile representation of the
//! methods a context supports. The table travels with every startpoint, so
//! any context that receives a startpoint also receives everything it needs
//! to open a connection back to the referenced endpoint.
//!
//! Table *order is meaningful*: automatic selection scans the table in order
//! and picks the first applicable method, so placing fast methods first
//! yields the paper's "fastest first" policy (§3.2). Users can reorder,
//! add, or delete entries to steer selection manually.

use crate::buffer::Buffer;
use crate::error::{NexusError, Result};
use std::fmt;

/// Identifies a communication method (and the module implementing it).
///
/// Identifiers are stable wire values: a descriptor produced in one context
/// must be interpretable in another. The well-known methods shipped with
/// this crate ecosystem use the constants below; applications may register
/// custom modules with ids ≥ [`MethodId::FIRST_CUSTOM`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u16);

impl MethodId {
    /// Intra-context delivery (sender and receiver share a context).
    pub const LOCAL: MethodId = MethodId(0);
    /// Intra-process shared-memory queues.
    pub const SHMEM: MethodId = MethodId(1);
    /// Partition-scoped fast message passing (the IBM MPL stand-in).
    pub const MPL: MethodId = MethodId(2);
    /// TCP sockets.
    pub const TCP: MethodId = MethodId(3);
    /// Unreliable UDP datagrams.
    pub const UDP: MethodId = MethodId(4);
    /// Reliable delivery layered over UDP.
    pub const RUDP: MethodId = MethodId(5);
    /// In-process multicast groups.
    pub const MCAST: MethodId = MethodId(6);
    /// Multi-link striped bulk transfer (a composite over other methods).
    pub const STRIPE: MethodId = MethodId(7);
    /// First id available for application-defined modules.
    pub const FIRST_CUSTOM: MethodId = MethodId(0x100);

    /// Human-readable name for the well-known methods.
    pub fn well_known_name(self) -> Option<&'static str> {
        Some(match self {
            MethodId::LOCAL => "local",
            MethodId::SHMEM => "shmem",
            MethodId::MPL => "mpl",
            MethodId::TCP => "tcp",
            MethodId::UDP => "udp",
            MethodId::RUDP => "rudp",
            MethodId::MCAST => "mcast",
            MethodId::STRIPE => "stripe",
            _ => return None,
        })
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.well_known_name() {
            Some(n) => write!(f, "{n}"),
            None => write!(f, "method#{}", self.0),
        }
    }
}

/// The information one communication module needs to reach one context.
///
/// The payload is opaque to the runtime: each module defines its own
/// encoding (e.g. the TCP module stores `host:port`, the MPL module stores
/// a session id and node number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommDescriptor {
    /// The method this descriptor belongs to.
    pub method: MethodId,
    /// Module-defined addressing data.
    pub data: Vec<u8>,
}

impl CommDescriptor {
    /// Creates a descriptor for `method` with module-defined `data`.
    pub fn new(method: MethodId, data: Vec<u8>) -> Self {
        CommDescriptor { method, data }
    }

    /// Wire size of this descriptor within a table.
    pub fn wire_len(&self) -> usize {
        2 + 2 + self.data.len()
    }

    fn encode(&self, buf: &mut Buffer) {
        buf.put_u16(self.method.0);
        buf.put_u16(self.data.len() as u16);
        buf.put_raw(&self.data);
    }

    fn decode(buf: &mut Buffer) -> Result<Self> {
        let method = MethodId(buf.get_u16()?);
        let len = buf.get_u16()? as usize;
        let data = buf.get_raw(len)?;
        Ok(CommDescriptor { method, data })
    }
}

/// An ordered set of communication descriptors for one context.
///
/// At most one descriptor per method is kept; inserting a descriptor for a
/// method already present replaces it in place (preserving its priority).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DescriptorTable {
    entries: Vec<CommDescriptor>,
}

impl DescriptorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of descriptors in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The descriptors in priority order.
    pub fn entries(&self) -> &[CommDescriptor] {
        &self.entries
    }

    /// Appends `desc` at the lowest priority, or replaces an existing entry
    /// for the same method in place.
    pub fn push(&mut self, desc: CommDescriptor) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.method == desc.method) {
            *e = desc;
        } else {
            self.entries.push(desc);
        }
    }

    /// Inserts `desc` at the *highest* priority (front of the scan order),
    /// removing any existing entry for the same method first.
    pub fn push_front(&mut self, desc: CommDescriptor) {
        self.remove(desc.method);
        self.entries.insert(0, desc);
    }

    /// Removes the descriptor for `method`, returning it if present.
    pub fn remove(&mut self, method: MethodId) -> Option<CommDescriptor> {
        let idx = self.entries.iter().position(|e| e.method == method)?;
        Some(self.entries.remove(idx))
    }

    /// Looks up the descriptor for `method`.
    pub fn get(&self, method: MethodId) -> Option<&CommDescriptor> {
        self.entries.iter().find(|e| e.method == method)
    }

    /// The methods present, in priority order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.entries.iter().map(|e| e.method).collect()
    }

    /// Reorders the table to match `order`. Methods named in `order` move to
    /// the front (in the given order); unnamed methods keep their relative
    /// order after them. Unknown methods in `order` are ignored.
    pub fn reorder(&mut self, order: &[MethodId]) {
        let mut front: Vec<CommDescriptor> = Vec::with_capacity(self.entries.len());
        for &m in order {
            if let Some(d) = self.remove(m) {
                front.push(d);
            }
        }
        front.append(&mut self.entries);
        self.entries = front;
    }

    /// Raises `method` to the highest priority if present. Returns whether
    /// the method was found.
    pub fn prioritize(&mut self, method: MethodId) -> bool {
        match self.remove(method) {
            Some(d) => {
                self.entries.insert(0, d);
                true
            }
            None => false,
        }
    }

    /// Encodes the table into `buf` (u16 count then each descriptor).
    pub fn encode(&self, buf: &mut Buffer) {
        buf.put_u16(self.entries.len() as u16);
        for e in &self.entries {
            // lint:allow(hot-path-alloc) descriptor-table packing runs at connect/pack time, not per message
            e.encode(buf);
        }
    }

    /// Decodes a table previously written by [`DescriptorTable::encode`].
    pub fn decode(buf: &mut Buffer) -> Result<Self> {
        let n = buf.get_u16()? as usize;
        // Wire tables are small (a handful of methods); reject absurd counts
        // instead of trusting a corrupt length.
        if n > 1024 {
            return Err(NexusError::Decode("descriptor table count too large"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(CommDescriptor::decode(buf)?);
        }
        Ok(DescriptorTable { entries })
    }

    /// Total wire size of the encoded table. The paper notes this is "a few
    /// tens of bytes" — cheap in a wide-area context, and omitted entirely
    /// for lightweight startpoints within a parallel computer.
    pub fn wire_len(&self) -> usize {
        2 + self.entries.iter().map(|e| e.wire_len()).sum::<usize>()
    }
}

impl FromIterator<CommDescriptor> for DescriptorTable {
    fn from_iter<T: IntoIterator<Item = CommDescriptor>>(iter: T) -> Self {
        let mut t = DescriptorTable::new();
        for d in iter {
            t.push(d);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: MethodId, bytes: &[u8]) -> CommDescriptor {
        CommDescriptor::new(m, bytes.to_vec())
    }

    #[test]
    fn push_replaces_same_method_in_place() {
        let mut t = DescriptorTable::new();
        t.push(d(MethodId::MPL, b"a"));
        t.push(d(MethodId::TCP, b"b"));
        t.push(d(MethodId::MPL, b"c"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.methods(), vec![MethodId::MPL, MethodId::TCP]);
        assert_eq!(t.get(MethodId::MPL).unwrap().data, b"c");
    }

    #[test]
    fn push_front_sets_highest_priority() {
        let mut t = DescriptorTable::new();
        t.push(d(MethodId::MPL, b"a"));
        t.push(d(MethodId::TCP, b"b"));
        t.push_front(d(MethodId::TCP, b"b2"));
        assert_eq!(t.methods(), vec![MethodId::TCP, MethodId::MPL]);
        assert_eq!(t.get(MethodId::TCP).unwrap().data, b"b2");
    }

    #[test]
    fn reorder_moves_named_methods_to_front() {
        let mut t: DescriptorTable = [
            d(MethodId::SHMEM, b"s"),
            d(MethodId::MPL, b"m"),
            d(MethodId::TCP, b"t"),
            d(MethodId::UDP, b"u"),
        ]
        .into_iter()
        .collect();
        t.reorder(&[MethodId::TCP, MethodId::UDP]);
        assert_eq!(
            t.methods(),
            vec![MethodId::TCP, MethodId::UDP, MethodId::SHMEM, MethodId::MPL]
        );
    }

    #[test]
    fn prioritize_is_the_manual_selection_lever() {
        let mut t: DescriptorTable = [d(MethodId::MPL, b"m"), d(MethodId::TCP, b"t")]
            .into_iter()
            .collect();
        assert!(t.prioritize(MethodId::TCP));
        assert_eq!(t.methods()[0], MethodId::TCP);
        assert!(!t.prioritize(MethodId::UDP));
    }

    #[test]
    fn encode_decode_roundtrip_preserves_order() {
        let t: DescriptorTable = [
            d(MethodId::MPL, b"partition-7:node-3"),
            d(MethodId::TCP, b"127.0.0.1:9000"),
            d(MethodId::UDP, b""),
        ]
        .into_iter()
        .collect();
        let mut buf = Buffer::new();
        t.encode(&mut buf);
        assert_eq!(buf.len(), t.wire_len());
        let t2 = DescriptorTable::decode(&mut buf).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn decode_rejects_corrupt_count() {
        let mut buf = Buffer::new();
        buf.put_u16(9999);
        assert!(DescriptorTable::decode(&mut buf).is_err());
    }

    #[test]
    fn decode_rejects_truncated_entry() {
        let mut buf = Buffer::new();
        buf.put_u16(1);
        buf.put_u16(MethodId::TCP.0);
        buf.put_u16(50); // claims 50 data bytes
        buf.put_raw(&[0; 10]);
        assert!(DescriptorTable::decode(&mut buf).is_err());
    }

    #[test]
    fn method_display_names() {
        assert_eq!(MethodId::TCP.to_string(), "tcp");
        assert_eq!(MethodId(0x200).to_string(), "method#512");
    }

    #[test]
    fn wire_len_is_tens_of_bytes_for_typical_tables() {
        // The paper's claim that a descriptor table costs "a few tens of
        // bytes" should hold for a realistic method mix.
        let t: DescriptorTable = [
            d(MethodId::MPL, b"sess:12,node:5"),
            d(MethodId::TCP, b"10.0.0.5:7000"),
            d(MethodId::SHMEM, b"seg:3"),
        ]
        .into_iter()
        .collect();
        assert!(t.wire_len() < 64, "wire_len = {}", t.wire_len());
    }
}
