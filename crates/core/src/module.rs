//! Communication modules: the pluggable method implementations.
//!
//! A communication module implements one low-level communication method
//! behind a standard interface (§3.1). In the C implementation this
//! interface is a *function table* constructed when the module is loaded;
//! the Rust equivalent is the [`CommModule`] trait object. To enable the
//! coexistence of many modules within one executable, the runtime accesses
//! every module through a [`ModuleRegistry`], and modules that were not
//! "compiled in" can still be produced on demand through registered loader
//! hooks (the dynamic-loading path).
//!
//! Each module splits into three runtime roles:
//! * the module itself ([`CommModule`]) — identity, applicability rules,
//!   descriptor construction, connection establishment;
//! * a per-context receive side ([`CommReceiver`]) — created when a context
//!   enables the method; polled by the context's poll engine;
//! * a sender-side connection ([`CommObject`]) — an active connection to a
//!   particular remote context, shared among all startpoints in a context
//!   that target the same context with the same method.

use crate::context::ContextInfo;
use crate::descriptor::{CommDescriptor, MethodId};
use crate::error::{NexusError, Result};
use crate::poll::ReadySignal;
use crate::rsr::{Rsr, WireFrame};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The receive side of a method within one context.
///
/// The poll engine calls [`CommReceiver::poll`] from the unified polling
/// function; modules that support blocking (the paper's AIX 4.1 TCP path)
/// additionally implement [`CommReceiver::recv_timeout`] and report it via
/// [`CommModule::supports_blocking`], allowing a dedicated thread to block
/// instead of polling.
pub trait CommReceiver: Send {
    /// Non-blocking check for one incoming RSR.
    fn poll(&mut self) -> Result<Option<Rsr>>;

    /// Blocking receive with a timeout. The default implementation simply
    /// polls once, which is correct but defeats the purpose; modules that
    /// advertise blocking support override this.
    fn recv_timeout(&mut self, _timeout: Duration) -> Result<Option<Rsr>> {
        self.poll()
    }

    /// Installs a doorbell the transport rings whenever a message becomes
    /// retrievable (ring *after* the enqueue — see [`ReadySignal`] for the
    /// ordering contract). Returning `true` moves this source to the poll
    /// engine's readiness tier; the default declines, keeping the source
    /// in the skip_poll rotation. Modules that accept report it via
    /// [`CommModule::supports_readiness`].
    fn set_ready_signal(&mut self, _signal: ReadySignal) -> bool {
        false
    }

    /// Releases receive-side resources. Called at context shutdown.
    fn close(&mut self) {}
}

/// An active sender-side connection to one remote context.
pub trait CommObject: Send + Sync {
    /// The method this connection uses.
    fn method(&self) -> MethodId;

    /// Transfers one RSR to the remote context.
    ///
    /// `frame` is the message's shared encode-once wire body: the same
    /// `WireFrame` is passed for every link of a multicast and every
    /// failover retry, so a transport that needs wire bytes calls
    /// [`WireFrame::body`] (serialized at most once per message) and
    /// assembles the small per-destination header on the stack. In-process
    /// transports that move the [`Rsr`] directly ignore `frame` entirely —
    /// with an interned handler and a refcounted payload, `rsr.clone()` is
    /// allocation-free.
    fn send(&self, rsr: &Rsr, frame: &WireFrame) -> Result<()>;

    /// Transfers one RSR whose payload is the concatenation `head ++
    /// tail`, without requiring the caller to materialize the combined
    /// buffer. The stripe path sends each chunk this way: `head` is the
    /// small stack-assembled chunk header and `tail` is a zero-copy slice
    /// of the original encode-once body. Wire transports override this
    /// with a gathered (vectored) write; the default assembles the
    /// combined payload from the buffer pool and delegates to
    /// [`CommObject::send`].
    fn send_parts(&self, rsr: &Rsr, head: &[u8], tail: &Bytes) -> Result<()> {
        send_parts_fallback(self, rsr, head, tail)
    }

    /// Sets a connection parameter (e.g. `"sockbuf"` for TCP). Modules
    /// reject unknown keys.
    fn set_param(&self, key: &str, _value: &str) -> Result<()> {
        Err(NexusError::BadParam {
            key: key.to_owned(),
            reason: "this communication object has no parameters".to_owned(),
        })
    }

    /// Whether a [`Bytes`] payload handed to [`CommObject::send`] reaches
    /// the receiving context as a shared view of the *same* storage
    /// (queue-backed in-process transports: local, shmem, MPL) rather
    /// than a wire copy. The bulk pull engine answers `#bulk-get` over
    /// such a connection with the registered region itself — a map-in-
    /// place borrow, zero copies end-to-end — and streams chunks over
    /// everything else. The default is the honest answer for any
    /// transport that serializes.
    fn supports_region_map(&self) -> bool {
        false
    }

    /// Releases the connection.
    fn close(&self) {}
}

/// Default [`CommObject::send_parts`]: builds the combined payload from
/// the thread-local buffer pool, sends it as an ordinary RSR, and returns
/// the frame storage to the pool. Generic (rather than taking `&dyn
/// CommObject`) so trait default methods can call it without coercing
/// `&Self`.
pub fn send_parts_fallback<O: CommObject + ?Sized>(
    obj: &O,
    rsr: &Rsr,
    head: &[u8],
    tail: &Bytes,
) -> Result<()> {
    let mut buf = crate::pool::take(head.len() + tail.len());
    buf.extend_from_slice(head);
    buf.extend_from_slice(tail);
    let combined = Rsr {
        dest: rsr.dest,
        endpoint: rsr.endpoint,
        handler: rsr.handler.clone(),
        ttl: rsr.ttl,
        payload: buf.freeze(),
    };
    let frame = WireFrame::new();
    let out = obj.send(&combined, &frame);
    // The combined payload is referenced by both `combined` and (if the
    // transport encoded) nothing else once the send returns; drop the RSR
    // first so the body storage can be pooled again.
    frame.reclaim();
    crate::pool::reclaim(combined.payload);
    out
}

/// A communication method implementation (the "function table").
pub trait CommModule: Send + Sync {
    /// Stable wire identifier for this method.
    fn method(&self) -> MethodId;

    /// Human-readable method name (used by the resource database).
    fn name(&self) -> &'static str;

    /// Relative speed rank; lower is faster. The registry sorts default
    /// descriptor tables by this rank, which realizes the paper's
    /// "fastest first" automatic selection policy.
    fn cost_rank(&self) -> u32;

    /// Enables this method for a context: allocates receive-side state and
    /// returns the descriptor other contexts will use to reach it.
    fn open(&self, ctx: &ContextInfo) -> Result<(CommDescriptor, Box<dyn CommReceiver>)>;

    /// Whether `local` can use `desc` to communicate. This is where
    /// method-specific criteria live: the MPL module requires both contexts
    /// to be in the same partition, shared memory requires the same node,
    /// and so on (§3.2).
    fn applicable(&self, local: &ContextInfo, desc: &CommDescriptor) -> bool;

    /// Opens a sender-side connection described by `desc`.
    fn connect(&self, local: &ContextInfo, desc: &CommDescriptor) -> Result<Arc<dyn CommObject>>;

    /// Estimated cost of one [`CommReceiver::poll`] call in nanoseconds.
    /// Cheap probes (MPL `mpc_status`: ~15 µs on the SP2) versus expensive
    /// readiness scans (TCP `select`: >100 µs) are what motivate
    /// `skip_poll` (§3.3). Used by enquiry functions and adaptive policies.
    fn poll_cost_ns(&self) -> u64;

    /// Whether receivers support genuine blocking via `recv_timeout`.
    fn supports_blocking(&self) -> bool {
        false
    }

    /// Whether receivers accept a readiness doorbell via
    /// [`CommReceiver::set_ready_signal`]. Contexts arm such methods into
    /// the poll engine's readiness tier at creation, taking them out of
    /// the skip_poll rotation; methods that stay `false` (the MPL probe,
    /// the delay queue) remain in the polled fallback tier.
    fn supports_readiness(&self) -> bool {
        false
    }

    /// Sets a module-wide parameter. Modules reject unknown keys.
    fn set_param(&self, key: &str, _value: &str) -> Result<()> {
        Err(NexusError::BadParam {
            key: key.to_owned(),
            reason: format!("module {:?} has no parameters", self.name()),
        })
    }
}

/// Loader hook used to resolve modules that are not yet registered — the
/// analog of dynamically loading a communication module at runtime.
pub type ModuleLoader = Box<dyn Fn(MethodId) -> Option<Arc<dyn CommModule>> + Send + Sync>;

/// The set of communication modules available to an executable.
///
/// Holds modules in *default priority order* (fastest first unless
/// explicitly overridden), plus loader hooks consulted when an unknown
/// method id must be resolved.
pub struct ModuleRegistry {
    inner: RwLock<RegistryInner>,
}

struct RegistryInner {
    // Ordered: default descriptor-table priority.
    modules: Vec<Arc<dyn CommModule>>,
    by_id: HashMap<MethodId, Arc<dyn CommModule>>,
    loaders: Vec<ModuleLoader>,
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModuleRegistry {
            inner: RwLock::new(RegistryInner {
                modules: Vec::new(),
                by_id: HashMap::new(),
                loaders: Vec::new(),
            }),
        }
    }

    /// Registers a module, keeping the list sorted by
    /// [`CommModule::cost_rank`] (stable for equal ranks). Registering a
    /// module whose method id is already present replaces it.
    pub fn register(&self, module: Arc<dyn CommModule>) {
        let mut g = self.inner.write();
        let id = module.method();
        g.modules.retain(|m| m.method() != id);
        g.by_id.insert(id, Arc::clone(&module));
        let rank = module.cost_rank();
        let pos = g
            .modules
            .iter()
            .position(|m| m.cost_rank() > rank)
            .unwrap_or(g.modules.len());
        g.modules.insert(pos, module);
    }

    /// Removes a module from the registry. Existing connections made
    /// through it are unaffected.
    pub fn unregister(&self, method: MethodId) -> bool {
        let mut g = self.inner.write();
        let had = g.by_id.remove(&method).is_some();
        g.modules.retain(|m| m.method() != method);
        had
    }

    /// Adds a loader hook for dynamic module resolution.
    pub fn add_loader(&self, loader: ModuleLoader) {
        self.inner.write().loaders.push(loader);
    }

    /// Looks up a registered module without invoking loaders.
    pub fn get(&self, method: MethodId) -> Option<Arc<dyn CommModule>> {
        self.inner.read().by_id.get(&method).cloned()
    }

    /// Looks up a module, consulting loader hooks (and registering any
    /// module they produce) if it is not already present.
    pub fn resolve(&self, method: MethodId) -> Option<Arc<dyn CommModule>> {
        if let Some(m) = self.get(method) {
            return Some(m);
        }
        // Take loaded candidates outside the lock to avoid re-entrancy.
        let loaded: Option<Arc<dyn CommModule>> = {
            let g = self.inner.read();
            g.loaders.iter().find_map(|l| l(method))
        };
        if let Some(m) = loaded {
            self.register(Arc::clone(&m));
            Some(m)
        } else {
            None
        }
    }

    /// Looks up a module by its resource-database name.
    pub fn get_by_name(&self, name: &str) -> Option<Arc<dyn CommModule>> {
        self.inner
            .read()
            .modules
            .iter()
            .find(|m| m.name() == name)
            .cloned()
    }

    /// The registered modules in default priority order.
    pub fn modules(&self) -> Vec<Arc<dyn CommModule>> {
        self.inner.read().modules.clone()
    }

    /// The default method order (fastest first unless overridden).
    pub fn default_order(&self) -> Vec<MethodId> {
        self.inner
            .read()
            .modules
            .iter()
            .map(|m| m.method())
            .collect()
    }

    /// Overrides the default priority order. Methods named in `order` move
    /// to the front in the given order; others keep their relative order.
    /// Unknown names are an error.
    pub fn set_order(&self, order: &[MethodId]) -> Result<()> {
        let mut g = self.inner.write();
        for m in order {
            if !g.by_id.contains_key(m) {
                return Err(NexusError::UnknownMethod(*m));
            }
        }
        let mut front = Vec::with_capacity(g.modules.len());
        for m in order {
            if let Some(pos) = g.modules.iter().position(|x| x.method() == *m) {
                front.push(g.modules.remove(pos));
            }
        }
        front.append(&mut g.modules);
        g.modules = front;
        Ok(())
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.inner.read().modules.len()
    }

    /// True if no modules are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[doc(hidden)]
pub mod test_support {
    //! A trivial in-process queue module used by core unit tests and doc
    //! examples, so they do not depend on the transports crate.

    use super::*;
    use crate::buffer::Buffer;
    use crate::context::ContextId;
    use crossbeam::queue::SegQueue;
    use parking_lot::Mutex;

    /// One context's receive inbox: the message queue plus the doorbell
    /// installed when the poll engine arms the source. Replaceable (not
    /// write-once) so a worker pool can re-arm the source with a sharded
    /// doorbell after adoption.
    struct TestInbox {
        queue: SegQueue<Rsr>,
        bell: Mutex<Option<ReadySignal>>,
    }

    type Medium = Mutex<HashMap<ContextId, Arc<TestInbox>>>;

    /// An in-process queue transport with a configurable method id, rank,
    /// and applicability predicate (used to emulate partition scoping).
    pub struct TestModule {
        id: MethodId,
        name: &'static str,
        rank: u32,
        poll_cost: u64,
        medium: Arc<Medium>,
        /// Partition restriction: if true, applicable only when descriptor
        /// partition matches the local partition.
        partition_scoped: bool,
        /// Whether receivers accept a readiness doorbell. Off by default
        /// so existing tests keep exercising the polled tier.
        ready: bool,
    }

    impl TestModule {
        pub fn new(id: MethodId, name: &'static str, rank: u32, partition_scoped: bool) -> Self {
            TestModule {
                id,
                name,
                rank,
                poll_cost: 100,
                medium: Arc::new(Mutex::new(HashMap::new())),
                partition_scoped,
                ready: false,
            }
        }

        /// Opts this module into the readiness tier: its receivers accept
        /// a doorbell and its senders ring it after every enqueue.
        pub fn with_readiness(mut self) -> Self {
            self.ready = true;
            self
        }
    }

    struct TestReceiver {
        inbox: Arc<TestInbox>,
        ready: bool,
    }

    impl CommReceiver for TestReceiver {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            Ok(self.inbox.queue.pop())
        }
        fn set_ready_signal(&mut self, signal: ReadySignal) -> bool {
            if !self.ready {
                return false;
            }
            *self.inbox.bell.lock() = Some(signal);
            true
        }
    }

    struct TestObject {
        id: MethodId,
        inbox: Arc<TestInbox>,
    }

    impl CommObject for TestObject {
        fn method(&self) -> MethodId {
            self.id
        }
        fn send(&self, rsr: &Rsr, _frame: &WireFrame) -> Result<()> {
            self.inbox.queue.push(rsr.clone());
            if let Some(bell) = self.inbox.bell.lock().as_ref() {
                bell.ring();
            }
            Ok(())
        }
    }

    impl CommModule for TestModule {
        fn method(&self) -> MethodId {
            self.id
        }
        fn name(&self) -> &'static str {
            self.name
        }
        fn cost_rank(&self) -> u32 {
            self.rank
        }
        fn open(&self, ctx: &ContextInfo) -> Result<(CommDescriptor, Box<dyn CommReceiver>)> {
            let inbox = Arc::new(TestInbox {
                queue: SegQueue::new(),
                bell: Mutex::new(None),
            });
            self.medium.lock().insert(ctx.id, Arc::clone(&inbox));
            let mut b = Buffer::new();
            b.put_u32(ctx.id.0);
            b.put_u32(ctx.partition.0);
            Ok((
                CommDescriptor::new(self.id, b.into_bytes().to_vec()),
                Box::new(TestReceiver {
                    inbox,
                    ready: self.ready,
                }),
            ))
        }
        fn applicable(&self, local: &ContextInfo, desc: &CommDescriptor) -> bool {
            if desc.method != self.id {
                return false;
            }
            let mut b = Buffer::new();
            b.put_raw(&desc.data);
            let _ctx = b.get_u32();
            let part = match b.get_u32() {
                Ok(p) => p,
                Err(_) => return false,
            };
            !self.partition_scoped || part == local.partition.0
        }
        fn connect(
            &self,
            _local: &ContextInfo,
            desc: &CommDescriptor,
        ) -> Result<Arc<dyn CommObject>> {
            let mut b = Buffer::new();
            b.put_raw(&desc.data);
            let ctx = ContextId(b.get_u32()?);
            let inbox = self
                .medium
                .lock()
                .get(&ctx)
                .cloned()
                .ok_or(NexusError::UnknownContext(ctx))?;
            Ok(Arc::new(TestObject { id: self.id, inbox }))
        }
        fn poll_cost_ns(&self) -> u64 {
            self.poll_cost
        }
        fn supports_readiness(&self) -> bool {
            self.ready
        }
    }
}

#[doc(hidden)]
pub mod fault_support {
    //! A module whose connections fail on demand — used to test the
    //! error-failover path ("switch among alternative communication
    //! substrates in the event of error", §1).

    use super::*;
    use crate::buffer::Buffer;
    use crate::context::ContextId;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// A queue-like module whose send path can be broken at runtime.
    pub struct FlakyModule {
        inner: super::test_support::TestModule,
        id: MethodId,
        name: &'static str,
        rank: u32,
        broken: Arc<AtomicBool>,
        /// Sends attempted while broken.
        pub failed_sends: Arc<AtomicU64>,
    }

    impl FlakyModule {
        /// Creates a healthy module; break it with [`FlakyModule::set_broken`].
        pub fn new(id: MethodId, name: &'static str, rank: u32) -> Self {
            FlakyModule {
                inner: super::test_support::TestModule::new(id, name, rank, false),
                id,
                name,
                rank,
                broken: Arc::new(AtomicBool::new(false)),
                failed_sends: Arc::new(AtomicU64::new(0)),
            }
        }

        /// Breaks or repairs every connection made through this module.
        pub fn set_broken(&self, broken: bool) {
            self.broken.store(broken, Ordering::Relaxed);
        }
    }

    struct FlakyObject {
        inner: Arc<dyn CommObject>,
        broken: Arc<AtomicBool>,
        failed_sends: Arc<AtomicU64>,
    }

    impl CommObject for FlakyObject {
        fn method(&self) -> MethodId {
            self.inner.method()
        }
        fn send(&self, rsr: &Rsr, frame: &WireFrame) -> Result<()> {
            if self.broken.load(Ordering::Relaxed) {
                self.failed_sends.fetch_add(1, Ordering::Relaxed);
                // Touch the shared body like a real wire transport would
                // before hitting the error, so failover tests observe that
                // retries reuse the already-encoded frame.
                let _ = frame.body(rsr).len();
                return Err(NexusError::ConnectionClosed);
            }
            self.inner.send(rsr, frame)
        }
    }

    impl CommModule for FlakyModule {
        fn method(&self) -> MethodId {
            self.id
        }
        fn name(&self) -> &'static str {
            self.name
        }
        fn cost_rank(&self) -> u32 {
            self.rank
        }
        fn open(&self, ctx: &ContextInfo) -> Result<(CommDescriptor, Box<dyn CommReceiver>)> {
            let (desc, rx) = self.inner.open(ctx)?;
            // Rewrap the descriptor under our own method id (TestModule
            // already uses self.id since we constructed it with it).
            let mut b = Buffer::new();
            b.put_raw(&desc.data);
            let _ = ContextId(b.get_u32()?);
            Ok((desc, rx))
        }
        fn applicable(&self, local: &ContextInfo, desc: &CommDescriptor) -> bool {
            self.inner.applicable(local, desc)
        }
        fn connect(
            &self,
            local: &ContextInfo,
            desc: &CommDescriptor,
        ) -> Result<Arc<dyn CommObject>> {
            Ok(Arc::new(FlakyObject {
                inner: self.inner.connect(local, desc)?,
                broken: Arc::clone(&self.broken),
                failed_sends: Arc::clone(&self.failed_sends),
            }))
        }
        fn poll_cost_ns(&self) -> u64 {
            self.inner.poll_cost_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::TestModule;
    use super::*;

    #[test]
    fn register_sorts_by_cost_rank() {
        let reg = ModuleRegistry::new();
        reg.register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        reg.register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, true)));
        reg.register(Arc::new(TestModule::new(
            MethodId::SHMEM,
            "shmem",
            5,
            false,
        )));
        assert_eq!(
            reg.default_order(),
            vec![MethodId::SHMEM, MethodId::MPL, MethodId::TCP]
        );
    }

    #[test]
    fn register_replaces_same_method() {
        let reg = ModuleRegistry::new();
        reg.register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        reg.register(Arc::new(TestModule::new(MethodId::TCP, "tcp2", 1, false)));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(MethodId::TCP).unwrap().name(), "tcp2");
    }

    #[test]
    fn set_order_overrides_defaults() {
        let reg = ModuleRegistry::new();
        reg.register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, true)));
        reg.register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        reg.set_order(&[MethodId::TCP]).unwrap();
        assert_eq!(reg.default_order(), vec![MethodId::TCP, MethodId::MPL]);
        assert!(reg.set_order(&[MethodId::UDP]).is_err());
    }

    #[test]
    fn unregister_removes_module() {
        let reg = ModuleRegistry::new();
        reg.register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        assert!(reg.unregister(MethodId::TCP));
        assert!(!reg.unregister(MethodId::TCP));
        assert!(reg.get(MethodId::TCP).is_none());
    }

    #[test]
    fn loader_hook_resolves_unknown_methods() {
        let reg = ModuleRegistry::new();
        reg.add_loader(Box::new(|m| {
            (m == MethodId::UDP)
                .then(|| Arc::new(TestModule::new(MethodId::UDP, "udp", 40, false)) as _)
        }));
        assert!(reg.get(MethodId::UDP).is_none());
        let m = reg.resolve(MethodId::UDP).expect("loader should fire");
        assert_eq!(m.name(), "udp");
        // Now it is registered for direct lookup too.
        assert!(reg.get(MethodId::UDP).is_some());
        assert!(reg.resolve(MethodId::MCAST).is_none());
    }

    #[test]
    fn get_by_name_finds_modules() {
        let reg = ModuleRegistry::new();
        reg.register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, true)));
        assert!(reg.get_by_name("mpl").is_some());
        assert!(reg.get_by_name("nope").is_none());
    }
}
