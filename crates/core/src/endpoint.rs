//! Communication endpoints.
//!
//! An endpoint is the receive side of a communication link. Endpoints are
//! created within a context, cannot leave it (only startpoints are mobile),
//! and may have a *local address* — an arbitrary object — attached, in
//! which case startpoints bound to the endpoint act as global names for
//! that object (§2.2).

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Identifies an endpoint within its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Type of the object attachable to an endpoint as its "local address".
pub type Attached = Arc<dyn Any + Send + Sync>;

/// Receive-side state for one endpoint (kept in the context's endpoint
/// table).
#[derive(Default)]
pub(crate) struct EndpointState {
    /// The attached local object, if any.
    pub attached: Option<Attached>,
}

/// The endpoint view passed to handlers.
#[derive(Clone)]
pub struct EndpointRef {
    /// The endpoint's id within the running context.
    pub id: EndpointId,
    /// The attached local object, if any.
    pub attached: Option<Attached>,
}

impl EndpointRef {
    /// Downcasts the attached object to a concrete type.
    pub fn attached_as<T: Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.attached.clone().and_then(|a| a.downcast::<T>().ok())
    }
}

impl fmt::Debug for EndpointRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EndpointRef")
            .field("id", &self.id)
            .field("attached", &self.attached.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attached_downcast() {
        let r = EndpointRef {
            id: EndpointId(1),
            attached: Some(Arc::new(42u64) as Attached),
        };
        assert_eq!(*r.attached_as::<u64>().unwrap(), 42);
        assert!(r.attached_as::<String>().is_none());
        let none = EndpointRef {
            id: EndpointId(2),
            attached: None,
        };
        assert!(none.attached_as::<u64>().is_none());
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(EndpointId(5).to_string(), "ep5");
        assert!(EndpointId(1) < EndpointId(2));
    }
}
