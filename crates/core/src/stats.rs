//! Per-method instrumentation counters.
//!
//! The paper requires *enquiry functions* that let programmers evaluate the
//! effectiveness of automatic selection and tune manual selections (§2.1).
//! Every context keeps a [`Stats`] block with per-method counters that the
//! enquiry API and the benchmark harnesses read.
//!
//! # Memory model
//!
//! All counters are updated and read with `Relaxed` ordering, uniformly.
//! That is sufficient — and anything stronger would buy nothing — because:
//!
//! * every counter is a monotone event count; no thread reads one to
//!   decide whether *other, non-atomic* memory is safe to touch, so there
//!   is no acquire/release publication edge to establish;
//! * each counter is individually exact (`fetch_add` is atomic at every
//!   ordering), so totals are never lost, only observed slightly late;
//! * snapshots taken while senders are active are *per-counter* exact but
//!   only *cross-counter* approximate (e.g. `sends` may already include a
//!   send whose `send_bytes` increment is still in flight). Enquiry
//!   readers tolerate that; tests that need exact cross-counter totals
//!   join the worker threads first, and the join itself provides the
//!   happens-before edge that makes every prior `Relaxed` write visible.
//!
//! The `xtask lint` atomic-pairing rule machine-checks the uniformity
//! (a lone Release store or Acquire load here would be a smell), and
//! `xtask model` hammers the same single-writer-many-reader patterns on
//! the trace side.

use crate::descriptor::MethodId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one communication method within one context.
#[derive(Debug, Default)]
pub struct MethodCounters {
    /// RSRs sent via this method.
    pub sends: AtomicU64,
    /// Payload + header bytes sent.
    pub send_bytes: AtomicU64,
    /// RSRs received via this method.
    pub recvs: AtomicU64,
    /// Payload + header bytes received.
    pub recv_bytes: AtomicU64,
    /// Poll operations issued against this method's receiver.
    pub polls: AtomicU64,
    /// Poll operations that found no message.
    pub empty_polls: AtomicU64,
    /// Messages forwarded onward (forwarding-node role).
    pub forwards: AtomicU64,
    /// Send failures that triggered failover away from this method.
    pub failovers: AtomicU64,
    /// Transport errors returned by this method's receive source.
    pub poll_errors: AtomicU64,
    /// Readiness-tier doorbell visits serviced for this method.
    pub ready_wakeups: AtomicU64,
}

/// A snapshot of [`MethodCounters`] (plain integers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodSnapshot {
    /// RSRs sent via this method.
    pub sends: u64,
    /// Payload + header bytes sent.
    pub send_bytes: u64,
    /// RSRs received via this method.
    pub recvs: u64,
    /// Payload + header bytes received.
    pub recv_bytes: u64,
    /// Poll operations issued against this method's receiver.
    pub polls: u64,
    /// Poll operations that found no message.
    pub empty_polls: u64,
    /// Messages forwarded onward.
    pub forwards: u64,
    /// Send failures that triggered failover away from this method.
    pub failovers: u64,
    /// Transport errors returned by this method's receive source.
    pub poll_errors: u64,
    /// Readiness-tier doorbell visits serviced for this method.
    pub ready_wakeups: u64,
}

impl MethodCounters {
    fn snapshot(&self) -> MethodSnapshot {
        MethodSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            send_bytes: self.send_bytes.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            recv_bytes: self.recv_bytes.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            empty_polls: self.empty_polls.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            poll_errors: self.poll_errors.load(Ordering::Relaxed),
            ready_wakeups: self.ready_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Records a sent RSR. Hot paths call this through a cached
    /// `Arc<MethodCounters>` (see [`Stats::method`]) so recording stays
    /// lock-free; `Stats::record_*` are the lock-then-record conveniences.
    pub fn note_send(&self, bytes: usize) {
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.send_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a received RSR.
    pub fn note_recv(&self, bytes: usize) {
        self.recvs.fetch_add(1, Ordering::Relaxed);
        self.recv_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one poll operation and whether it found a message.
    pub fn note_poll(&self, found: bool) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if !found {
            self.empty_polls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a forwarded message.
    pub fn note_forward(&self) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a send failure that triggered failover away from this
    /// method.
    pub fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a transport error from this method's receive source.
    pub fn note_poll_error(&self) {
        self.poll_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one serviced doorbell visit on the readiness tier.
    pub fn note_ready_wakeup(&self) {
        self.ready_wakeups.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-context statistics, keyed by method.
#[derive(Default)]
pub struct Stats {
    methods: RwLock<HashMap<MethodId, Arc<MethodCounters>>>,
    /// Handler invocations in this context (any method).
    pub handler_invocations: AtomicU64,
}

impl Stats {
    /// Creates an empty stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for `method`, created on first use.
    ///
    /// Hot paths (RSR issue, the unified polling function) call this once
    /// and cache the returned `Arc`, then record through the
    /// `MethodCounters::note_*` methods — steady-state recording touches
    /// only atomics, never this map's lock.
    pub fn method(&self, method: MethodId) -> Arc<MethodCounters> {
        if let Some(c) = self.methods.read().get(&method) {
            return Arc::clone(c);
        }
        let mut g = self.methods.write();
        Arc::clone(g.entry(method).or_default())
    }

    /// Records a sent RSR.
    pub fn record_send(&self, method: MethodId, bytes: usize) {
        self.method(method).note_send(bytes);
    }

    /// Records a received RSR.
    pub fn record_recv(&self, method: MethodId, bytes: usize) {
        self.method(method).note_recv(bytes);
    }

    /// Records one poll operation and whether it found a message.
    pub fn record_poll(&self, method: MethodId, found: bool) {
        self.method(method).note_poll(found);
    }

    /// Records a forwarded message.
    pub fn record_forward(&self, method: MethodId) {
        self.method(method).note_forward();
    }

    /// Records a send failure that triggered failover away from `method`.
    pub fn record_failover(&self, method: MethodId) {
        self.method(method).note_failover();
    }

    /// Snapshot of all per-method counters.
    pub fn snapshot(&self) -> HashMap<MethodId, MethodSnapshot> {
        self.methods
            .read()
            .iter()
            .map(|(k, v)| (*k, v.snapshot()))
            .collect()
    }

    /// Snapshot for one method (zeroes if never used).
    pub fn snapshot_method(&self, method: MethodId) -> MethodSnapshot {
        self.methods
            .read()
            .get(&method)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.record_send(MethodId::TCP, 100);
        s.record_send(MethodId::TCP, 50);
        s.record_recv(MethodId::TCP, 100);
        s.record_poll(MethodId::TCP, false);
        s.record_poll(MethodId::TCP, true);
        s.record_forward(MethodId::TCP);
        let snap = s.snapshot_method(MethodId::TCP);
        assert_eq!(snap.sends, 2);
        assert_eq!(snap.send_bytes, 150);
        assert_eq!(snap.recvs, 1);
        assert_eq!(snap.recv_bytes, 100);
        assert_eq!(snap.polls, 2);
        assert_eq!(snap.empty_polls, 1);
        assert_eq!(snap.forwards, 1);
    }

    #[test]
    fn cached_handle_feeds_the_same_counters() {
        let s = Stats::new();
        let c = s.method(MethodId::TCP);
        c.note_send(10);
        c.note_poll(false);
        c.note_poll_error();
        let snap = s.snapshot_method(MethodId::TCP);
        assert_eq!(snap.sends, 1);
        assert_eq!(snap.send_bytes, 10);
        assert_eq!(snap.polls, 1);
        assert_eq!(snap.empty_polls, 1);
        assert_eq!(snap.poll_errors, 1);
    }

    #[test]
    fn unused_method_snapshots_to_zero() {
        let s = Stats::new();
        assert_eq!(s.snapshot_method(MethodId::UDP), MethodSnapshot::default());
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn snapshot_covers_all_methods() {
        let s = Stats::new();
        s.record_send(MethodId::MPL, 1);
        s.record_send(MethodId::TCP, 2);
        let all = s.snapshot();
        assert_eq!(all.len(), 2);
        assert_eq!(all[&MethodId::MPL].send_bytes, 1);
        assert_eq!(all[&MethodId::TCP].send_bytes, 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = Arc::new(Stats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_send(MethodId::MPL, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot_method(MethodId::MPL).sends, 4000);
    }
}
