//! Mercury-style eager/rendezvous bulk-data protocol.
//!
//! Every RSR below a link's rendezvous cutoff ships its payload inline —
//! the untouched eager path. Above the cutoff, [`crate::context::Context::rsr_bulk`]
//! registers the payload in a [`BulkRegistry`] and sends a small eager
//! RSR carrying a [`BulkHandle`] instead of the body; the receiver pulls
//! the region on demand with a `#bulk-get` request serviced by the pull
//! engine (`Context::bulk_pull_service`):
//!
//! * over an in-process queue method (local, shmem, MPL — anything whose
//!   [`crate::module::CommObject::supports_region_map`] is true), the
//!   origin answers with the registered [`Bytes`] region itself: the
//!   receiver borrows the sender's storage in place, zero copies
//!   end-to-end;
//! * over a wire method (TCP, RUDP), the origin streams the region as
//!   pipelined [`crate::stripe::MAX_CHUNK_PAYLOAD`]-sized chunks reusing
//!   the stripe chunk framing and assembler bitmap — across *all* rails
//!   of a striped link, so a pulled region rides the same aggregated
//!   bandwidth a striped inline body would.
//!
//! Regions have refcounted lifetime (a region auto-releases once every
//! expected pull has completed), support cancellation, and carry a
//! per-transfer deadline; expiry on either side is surfaced as a trace
//! event ([`crate::trace::TraceEventKind::BulkTimeout`]) rather than a
//! hang.
//!
//! # Wire formats
//!
//! All four reserved handlers are intercepted by `Context::dispatch`
//! before endpoint lookup (like stripe chunks), so the RSR `endpoint`
//! field is free to carry protocol state:
//!
//! ```text
//! #bulk      dest=receiver  endpoint=target endpoint   payload = BulkHandle ++ handler name
//! #bulk-get  dest=origin    endpoint=region id         payload = receiver ContextId (u32)
//! #bulk-dat  dest=receiver  endpoint=region id         payload = the region (zero-copy view)
//! #bulk-chk  dest=receiver  endpoint=region id         payload = StripeMeta ++ data slice
//! ```
//!
//! An empty `#bulk-dat` (or any length mismatch) is a denial: the pull
//! was cancelled, expired, or unknown at the origin.

use crate::context::ContextId;
use crate::error::{NexusError, Result};
use crate::rsr::HandlerName;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Reserved handler: the eager announce carrying a [`BulkHandle`].
pub const BULK_HANDLER: &str = "#bulk";

/// Reserved handler: a receiver's pull request for a region.
pub const BULK_GET_HANDLER: &str = "#bulk-get";

/// Reserved handler: a whole-region pull response (in-process map path).
pub const BULK_DAT_HANDLER: &str = "#bulk-dat";

/// Reserved handler: one chunk of a streamed pull response (wire path).
pub const BULK_CHK_HANDLER: &str = "#bulk-chk";

/// Encoded size of a [`BulkHandle`] (well under the 32 B budget).
pub const HANDLE_LEN: usize = 8 + 8 + 4 + 4;

fn interned(cell: &'static OnceLock<HandlerName>, name: &str) -> HandlerName {
    cell.get_or_init(|| HandlerName::intern(name)).clone()
}

/// The interned [`BULK_HANDLER`] (cached: cloning is a refcount bump).
pub fn bulk_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, BULK_HANDLER)
}

/// The interned [`BULK_GET_HANDLER`].
pub fn bulk_get_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, BULK_GET_HANDLER)
}

/// The interned [`BULK_DAT_HANDLER`].
pub fn bulk_dat_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, BULK_DAT_HANDLER)
}

/// The interned [`BULK_CHK_HANDLER`].
pub fn bulk_chk_handler() -> HandlerName {
    static H: OnceLock<HandlerName> = OnceLock::new();
    interned(&H, BULK_CHK_HANDLER)
}

// ---------------------------------------------------------------------------
// BulkHandle
// ---------------------------------------------------------------------------

/// The on-the-wire stand-in for a payload that crossed the rendezvous
/// cutoff: everything a receiver needs to pull the region from its
/// origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkHandle {
    /// Registry id of the region at the origin.
    pub region: u64,
    /// Region length in bytes.
    pub len: u64,
    /// The context exposing the region (where `#bulk-get` goes).
    pub origin: ContextId,
    /// Advisory method hints (reserved; the origin decides map-vs-stream
    /// from its own connection to the receiver, so 0 today).
    pub hints: u32,
}

impl BulkHandle {
    /// Serializes the handle onto the stack.
    pub fn to_bytes(self) -> [u8; HANDLE_LEN] {
        let mut b = [0u8; HANDLE_LEN];
        b[0..8].copy_from_slice(&self.region.to_le_bytes());
        b[8..16].copy_from_slice(&self.len.to_le_bytes());
        b[16..20].copy_from_slice(&self.origin.0.to_le_bytes());
        b[20..24].copy_from_slice(&self.hints.to_le_bytes());
        b
    }

    /// Parses a handle from the front of an announce payload.
    pub fn parse(payload: &[u8]) -> Result<BulkHandle> {
        if payload.len() < HANDLE_LEN {
            return Err(NexusError::Decode("bulk announce shorter than its handle"));
        }
        Ok(BulkHandle {
            region: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            len: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            origin: ContextId(u32::from_le_bytes(payload[16..20].try_into().unwrap())),
            hints: u32::from_le_bytes(payload[20..24].try_into().unwrap()),
        })
    }
}

/// Splits an announce payload into its handle and the inner handler name.
/// Rejects empty and reserved (`'#'`-prefixed) handler names — permitting
/// the latter would let a reassembled pull re-enter the runtime dispatch.
pub fn parse_announce(payload: &[u8]) -> Result<(BulkHandle, &str)> {
    let handle = BulkHandle::parse(payload)?;
    let name = std::str::from_utf8(&payload[HANDLE_LEN..])
        .map_err(|_| NexusError::Decode("bulk announce handler is not UTF-8"))?;
    if name.is_empty() {
        return Err(NexusError::Decode("bulk announce has no handler name"));
    }
    if name.as_bytes()[0] == b'#' {
        return Err(NexusError::Decode("bulk announce nests a reserved handler"));
    }
    Ok((handle, name))
}

/// Process-unique region ids: pid in the high bits over a process
/// counter, like stripe transfer ids but in an independent namespace (a
/// region id doubles as the `#bulk-chk` transfer id on a *dedicated*
/// assembler, so the two spaces never meet).
fn next_region_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    ((std::process::id() as u64) << 40) ^ NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// BulkRegistry
// ---------------------------------------------------------------------------

/// One exposed region awaiting pulls.
struct Region {
    data: Bytes,
    /// Pulls this region still owes before it auto-releases.
    remaining: u32,
    /// Pulls currently being served (a [`PullGuard`] is alive).
    active: u32,
    /// Expiry; `None` means the region lives until released.
    deadline: Option<Instant>,
}

#[derive(Default)]
struct RegistryState {
    regions: HashMap<u64, Region>,
}

/// Registered [`Bytes`] regions exposed for pull, with refcounted
/// lifetime: a region is released when every expected pull has completed,
/// when its owner cancels it, or when its deadline expires — whichever
/// comes first. In-flight [`PullGuard`]s hold their own view of the
/// storage, so release is always safe mid-pull.
#[derive(Default)]
pub struct BulkRegistry {
    inner: Arc<Mutex<RegistryState>>,
}

impl BulkRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exposes `data` for `expected_pulls` pulls, optionally until
    /// `deadline`. Returns the region id to embed in a [`BulkHandle`].
    pub fn register(&self, data: Bytes, expected_pulls: u32, deadline: Option<Instant>) -> u64 {
        let region = next_region_id();
        self.inner.lock().regions.insert(
            region,
            Region {
                data,
                remaining: expected_pulls.max(1),
                active: 0,
                deadline,
            },
        );
        region
    }

    /// Begins serving one pull of `region`: returns a guard holding the
    /// region data, or `None` when the region is unknown, already fully
    /// pulled, cancelled, or past its deadline (an expired region is
    /// released on the spot — the sweep needn't have run first).
    pub fn begin_pull(&self, region: u64) -> Option<PullGuard> {
        let mut state = self.inner.lock();
        let r = state.regions.get_mut(&region)?;
        if r.deadline.is_some_and(|d| Instant::now() >= d) {
            state.regions.remove(&region);
            return None;
        }
        if r.remaining == 0 {
            return None;
        }
        r.remaining -= 1;
        r.active += 1;
        let data = r.data.clone();
        Some(PullGuard {
            inner: Arc::clone(&self.inner),
            region,
            data,
        })
    }

    /// Releases `region` immediately (owner cancellation or early free).
    /// Idempotent: returns whether the region was still registered.
    /// In-flight pulls keep their own data view and complete normally.
    pub fn release(&self, region: u64) -> bool {
        self.inner.lock().regions.remove(&region).is_some()
    }

    /// Releases every region whose deadline has passed, returning their
    /// ids so the caller can surface trace events.
    pub fn sweep(&self, now: Instant) -> Vec<u64> {
        let mut state = self.inner.lock();
        let expired: Vec<u64> = state
            .regions
            .iter()
            .filter(|(_, r)| r.deadline.is_some_and(|d| now >= d))
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            state.regions.remove(id);
        }
        expired
    }

    /// Regions currently registered.
    pub fn len(&self) -> usize {
        self.inner.lock().regions.len()
    }

    /// True when no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Keeps one pull of a region alive: holds a zero-copy view of the data
/// and, on drop, retires the pull — releasing the region once it owes no
/// further pulls and none are in flight.
pub struct PullGuard {
    inner: Arc<Mutex<RegistryState>>,
    region: u64,
    data: Bytes,
}

impl PullGuard {
    /// The region data (a refcounted view of the registered storage).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// The region id this guard is serving.
    pub fn region(&self) -> u64 {
        self.region
    }
}

impl Drop for PullGuard {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        // The region may already be gone (cancelled or expired mid-pull);
        // the guard's own data view kept the transfer safe regardless.
        if let Some(r) = state.regions.get_mut(&self.region) {
            r.active -= 1;
            if r.remaining == 0 && r.active == 0 {
                state.regions.remove(&self.region);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handle_roundtrip() {
        let h = BulkHandle {
            region: 0xFEED_F00D_0000_0042,
            len: 4 << 20,
            origin: ContextId(7),
            hints: 0,
        };
        assert_eq!(BulkHandle::parse(&h.to_bytes()).unwrap(), h);
        assert!(BulkHandle::parse(&h.to_bytes()[..HANDLE_LEN - 1]).is_err());
        assert!(HANDLE_LEN <= 32, "handle must fit the 32 B wire budget");
    }

    #[test]
    fn announce_roundtrip_and_validation() {
        let h = BulkHandle {
            region: 9,
            len: 100,
            origin: ContextId(1),
            hints: 0,
        };
        let mut v = h.to_bytes().to_vec();
        v.extend_from_slice(b"work");
        let (parsed, name) = parse_announce(&v).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(name, "work");
        // No handler name.
        assert!(parse_announce(&h.to_bytes()).is_err());
        // Reserved handler nesting.
        let mut bad = h.to_bytes().to_vec();
        bad.extend_from_slice(b"#stripe");
        assert!(parse_announce(&bad).is_err());
        // Non-UTF-8 handler name.
        let mut bin = h.to_bytes().to_vec();
        bin.extend_from_slice(&[0xFF, 0xFE]);
        assert!(parse_announce(&bin).is_err());
    }

    #[test]
    fn region_auto_releases_after_expected_pulls() {
        let reg = BulkRegistry::new();
        let body = Bytes::from(vec![3u8; 64]);
        let id = reg.register(body.clone(), 2, None);
        assert_eq!(reg.len(), 1);
        let g1 = reg.begin_pull(id).unwrap();
        assert_eq!(&g1.data()[..], &body[..]);
        drop(g1);
        assert_eq!(reg.len(), 1, "one pull still owed");
        let g2 = reg.begin_pull(id).unwrap();
        drop(g2);
        assert_eq!(reg.len(), 0, "all expected pulls served");
        assert!(reg.begin_pull(id).is_none());
    }

    #[test]
    fn concurrent_pulls_hold_the_region_until_both_finish() {
        let reg = BulkRegistry::new();
        let id = reg.register(Bytes::from_static(b"shared"), 2, None);
        let g1 = reg.begin_pull(id).unwrap();
        let g2 = reg.begin_pull(id).unwrap();
        assert!(reg.begin_pull(id).is_none(), "no pulls left to grant");
        drop(g1);
        assert_eq!(reg.len(), 1, "a pull is still in flight");
        drop(g2);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn cancel_mid_pull_is_safe_and_double_release_is_idempotent() {
        let reg = BulkRegistry::new();
        let id = reg.register(Bytes::from_static(b"doomed"), 4, None);
        let g = reg.begin_pull(id).unwrap();
        assert!(reg.release(id));
        assert!(!reg.release(id), "second release is a no-op");
        assert_eq!(reg.len(), 0);
        // The in-flight guard still owns its data and drops cleanly.
        assert_eq!(&g.data()[..], b"doomed");
        drop(g);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn deadline_expiry_denies_and_sweeps() {
        let reg = BulkRegistry::new();
        let past = Instant::now() - Duration::from_millis(1);
        let a = reg.register(Bytes::from_static(b"a"), 1, Some(past));
        let b = reg.register(Bytes::from_static(b"b"), 1, Some(past));
        let live = reg.register(Bytes::from_static(b"c"), 1, None);
        // Lazy expiry at pull time.
        assert!(reg.begin_pull(a).is_none());
        // Sweep releases the rest of the expired set, sparing live regions.
        let mut swept = reg.sweep(Instant::now());
        swept.sort_unstable();
        assert_eq!(swept, vec![b]);
        assert_eq!(reg.len(), 1);
        assert!(reg.begin_pull(live).is_some());
    }
}
