//! Thread-local frame-buffer pool for the RSR send path.
//!
//! Encoding a frame body needs one heap buffer; at millions of RSRs per
//! second that buffer is the dominant allocation. Senders [`take`] a
//! [`BytesMut`], freeze it into the shared frame body, and — once every
//! transport send has dropped its reference — [`reclaim`] the storage
//! back for the next message. The pool is thread-local, so there is no
//! cross-thread contention and no locking on the hot path; a buffer
//! frozen on one thread and reclaimed on another simply joins the other
//! thread's pool.

use bytes::{Bytes, BytesMut};
use std::cell::RefCell;

/// Buffers bigger than this are not retained: a single bulk transfer
/// should not pin megabytes of idle capacity to every sending thread.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// Retained buffers per thread. Sends are synchronous, so steady state
/// needs one or two; the slack covers nested sends (forwarding, wrapped
/// transports that re-frame a transformed payload).
const MAX_POOLED_BUFFERS: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
}

/// Takes a cleared buffer with at least `min_capacity` bytes of capacity,
/// reusing pooled storage when available.
pub fn take(min_capacity: usize) -> BytesMut {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    if buf.capacity() < min_capacity {
        buf.reserve(min_capacity - buf.len().min(min_capacity));
    }
    buf
}

/// Returns a buffer to this thread's pool (or drops it if the pool is
/// full or the buffer is oversized).
pub fn give(mut buf: BytesMut) {
    if buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Attempts to recover frozen frame storage for reuse. Succeeds only when
/// `bytes` is the unique, whole view of its storage — i.e. every transport
/// send has released its clone — and is a no-op otherwise (a transport
/// that queued the frame keeps it alive; the storage is simply freed
/// later by the last owner).
pub fn reclaim(bytes: Bytes) {
    if let Ok(buf) = bytes.try_into_mut() {
        give(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reserves_requested_capacity() {
        let buf = take(1024);
        assert!(buf.capacity() >= 1024);
        assert!(buf.is_empty());
    }

    #[test]
    fn reclaim_reuses_unique_storage() {
        let mut buf = take(64);
        buf.extend_from_slice(b"hello");
        let frozen = buf.freeze();
        let ptr = frozen.as_ref().as_ptr();
        reclaim(frozen);
        let again = take(1);
        assert_eq!(again.capacity().min(64), 64, "pooled capacity came back");
        assert_eq!(
            again.as_ref().as_ptr(),
            ptr,
            "the same storage was handed back"
        );
    }

    #[test]
    fn reclaim_is_a_noop_for_shared_storage() {
        let mut buf = take(64);
        buf.extend_from_slice(b"shared");
        let frozen = buf.freeze();
        let held = frozen.clone();
        reclaim(frozen); // refused: `held` still references the storage
        assert_eq!(held, b"shared"[..]);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let big = BytesMut::with_capacity(MAX_POOLED_CAPACITY + 1);
        give(big);
        // The pool never hands back more capacity than it retains, so a
        // fresh take gets a normal buffer.
        let buf = take(16);
        assert!(buf.capacity() <= MAX_POOLED_CAPACITY || buf.capacity() >= 16);
    }
}
