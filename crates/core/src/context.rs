//! Contexts (address spaces) and the fabric that connects them.
//!
//! Following the paper's terminology, a *context* is an address space or
//! virtual processor (§3). The [`Fabric`] is the process-wide registry of
//! contexts together with the [`ModuleRegistry`] of communication methods —
//! the stand-in for a metacomputing testbed in which contexts live on
//! different nodes and partitions of one or several parallel computers.
//!
//! Each context owns: a handler table, an endpoint table, its own
//! descriptor table (what it advertises to others), a unified
//! [`PollEngine`] over the receive side of every method it enables, a
//! communication-object cache (objects are shared among startpoints that
//! target the same context with the same method), a selection policy, and
//! statistics for the enquiry functions.

use crate::buffer::Buffer;
use crate::bulk::{self, BulkHandle, BulkRegistry};
use crate::descriptor::{DescriptorTable, MethodId};
use crate::endpoint::{Attached, EndpointId, EndpointRef, EndpointState};
use crate::error::{NexusError, Result};
use crate::fxhash::FxBuildHasher;
use crate::handler::{HandlerArgs, HandlerRegistry};
use crate::module::{CommObject, CommReceiver, ModuleRegistry};
use crate::poll::{BlockingPoller, PollEngine, PollOutcome};
use crate::pool;
use crate::rsr::{HandlerName, Rsr, WireFrame};
use crate::selection::{
    self, ExcludeMethods, FirstApplicable, MethodCostEstimate, ReselectConfig, SelectionPolicy,
};
use crate::startpoint::{Link, SelectedMethod, Startpoint, Target};
use crate::stats::Stats;
use crate::stripe::{self, gather_handler, StripeAssembler, StripeMeta, StripeRail, StripedObject};
use crate::trace::{HistogramSummary, Trace, TraceEventKind};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Identifies a context (address space) within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u32);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a physical node (processor) in the emulated testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

/// Identifies a partition (the SP2 software abstraction: MPL works only
/// within one partition; TCP works everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartitionId(pub u32);

/// Immutable placement facts about a context, given to communication
/// modules for applicability checks and descriptor construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextInfo {
    /// The context's id.
    pub id: ContextId,
    /// The node the context runs on.
    pub node: NodeId,
    /// The partition the node belongs to.
    pub partition: PartitionId,
}

/// Route communications for one method through a forwarding node instead of
/// receiving them directly (§3.3's forwarding design: e.g. all external TCP
/// traffic for a partition lands on one node, which re-sends over MPL).
#[derive(Debug, Clone, Copy)]
pub struct ForwardVia {
    /// The method whose traffic is forwarded (typically TCP).
    pub method: MethodId,
    /// The context acting as the forwarder. It must itself enable `method`.
    pub forwarder: ContextId,
}

/// Options for creating a context.
#[derive(Debug, Clone, Default)]
pub struct ContextOpts {
    /// Node placement.
    pub node: NodeId,
    /// Partition placement.
    pub partition: PartitionId,
    /// Methods to enable (None = every registered module). Order is
    /// irrelevant; descriptor-table priority follows the registry order.
    pub methods: Option<Vec<MethodId>>,
    /// Optional forwarding arrangement (see [`ForwardVia`]).
    pub forward_via: Option<ForwardVia>,
}

struct FabricInner {
    registry: Arc<ModuleRegistry>,
    contexts: RwLock<HashMap<ContextId, Arc<Context>>>,
    next_ctx: AtomicU32,
    shutdown: AtomicBool,
}

/// The process-wide collection of contexts and communication modules.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// Creates a fabric with an empty module registry.
    pub fn new() -> Self {
        Self::with_id_base(0)
    }

    /// Creates a fabric whose context ids start at `base`. When several OS
    /// processes cooperate (their startpoints crossing process boundaries
    /// over socket transports), give each process a disjoint id range so
    /// context ids are globally unique — the in-process analog of the
    /// paper's globally unique session identifiers.
    pub fn with_id_base(base: u32) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                registry: Arc::new(ModuleRegistry::new()),
                contexts: RwLock::new(HashMap::new()),
                next_ctx: AtomicU32::new(base),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// The module registry (register communication modules here before
    /// creating contexts).
    pub fn registry(&self) -> &ModuleRegistry {
        &self.inner.registry
    }

    /// Creates a context with default placement (node 0, partition 0, all
    /// registered methods).
    pub fn create_context(&self) -> Result<Arc<Context>> {
        self.create_context_with(ContextOpts::default())
    }

    /// Creates a context at the given node/partition with all methods.
    pub fn create_context_at(&self, node: NodeId, partition: PartitionId) -> Result<Arc<Context>> {
        self.create_context_with(ContextOpts {
            node,
            partition,
            ..Default::default()
        })
    }

    /// Creates a context with full options.
    pub fn create_context_with(&self, opts: ContextOpts) -> Result<Arc<Context>> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        let id = ContextId(self.inner.next_ctx.fetch_add(1, Ordering::Relaxed));
        let info = ContextInfo {
            id,
            node: opts.node,
            partition: opts.partition,
        };

        // Validate requested methods against the registry.
        if let Some(ms) = &opts.methods {
            for m in ms {
                if self.inner.registry.resolve(*m).is_none() {
                    return Err(NexusError::UnknownMethod(*m));
                }
            }
        }

        let mut table = DescriptorTable::new();
        let mut engine = PollEngine::new();
        let mut ready_methods = Vec::new();

        // Walk modules in registry (priority) order so the context's own
        // descriptor table comes out fastest-first.
        for module in self.inner.registry.modules() {
            let mid = module.method();
            let enabled = opts.methods.as_ref().is_none_or(|ms| ms.contains(&mid));
            let forwarded = opts
                .forward_via
                .is_some_and(|fv| fv.method == mid && !enabled);
            if enabled {
                let (desc, receiver) = module.open(&info)?;
                table.push(desc);
                engine.add_source(mid, receiver);
                if module.supports_readiness() {
                    ready_methods.push(mid);
                }
            } else if forwarded {
                // Advertise the forwarder's descriptor for this method:
                // senders reach the forwarder, which re-sends to us.
                let fv = opts.forward_via.unwrap();
                let fwd = self
                    .context(fv.forwarder)
                    .ok_or(NexusError::UnknownContext(fv.forwarder))?;
                let fdesc = fwd
                    .descriptor_table()
                    .get(mid)
                    .cloned()
                    .ok_or(NexusError::UnknownMethod(mid))?;
                table.push(fdesc);
            }
        }

        // Bind the engine's sources to the context's stats and trace
        // before construction: every probe then records its measured cost
        // and outcome through cached atomics, without locking.
        let stats = Stats::new();
        let trace = Arc::new(Trace::new());
        engine.bind(&stats, &trace);
        // Move readiness-capable sources out of the polled rotation: their
        // transports ring the engine doorbell on enqueue, so the unified
        // polling function only ever visits them when they have traffic.
        for mid in ready_methods {
            engine.arm_ready(mid);
        }

        let ctx = Arc::new(Context {
            info,
            fabric: Arc::downgrade(&self.inner),
            handlers: HandlerRegistry::new(),
            endpoints: RwLock::new(HashMap::default()),
            next_endpoint: AtomicU64::new(1),
            table,
            poll: Mutex::new(engine),
            blocking: Mutex::new(Vec::new()),
            blocking_count: AtomicUsize::new(0),
            comm_cache: Mutex::new(HashMap::new()),
            policy: RwLock::new(Arc::new(FirstApplicable)),
            reselect: RwLock::new(None),
            stats,
            trace,
            shutdown: AtomicBool::new(false),
            passes: AtomicU64::new(0),
            workers: Mutex::new(None),
            extensions: Mutex::new(HashMap::new()),
        });
        self.inner.contexts.write().insert(id, Arc::clone(&ctx));
        Ok(ctx)
    }

    /// Looks up a context by id.
    pub fn context(&self, id: ContextId) -> Option<Arc<Context>> {
        self.inner.contexts.read().get(&id).cloned()
    }

    /// All live contexts (unordered).
    pub fn contexts(&self) -> Vec<Arc<Context>> {
        self.inner.contexts.read().values().cloned().collect()
    }

    /// Number of live contexts.
    pub fn len(&self) -> usize {
        self.inner.contexts.read().len()
    }

    /// True if no contexts exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shuts down every context and refuses further creation.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        let ctxs: Vec<_> = self
            .inner
            .contexts
            .write()
            .drain()
            .map(|(_, c)| c)
            .collect();
        for c in ctxs {
            c.shutdown();
        }
    }
}

/// An address space participating in multimethod communication.
pub struct Context {
    info: ContextInfo,
    fabric: Weak<FabricInner>,
    handlers: HandlerRegistry,
    endpoints: RwLock<HashMap<EndpointId, EndpointState, FxBuildHasher>>,
    next_endpoint: AtomicU64,
    table: DescriptorTable,
    poll: Mutex<PollEngine>,
    blocking: Mutex<Vec<BlockingPoller>>,
    // Mirror of `blocking.len()`, maintained under that lock; lets the
    // progress pass skip the lock entirely in the common no-blocking case.
    blocking_count: AtomicUsize,
    comm_cache: Mutex<HashMap<(ContextId, MethodId), Arc<dyn CommObject>>>,
    policy: RwLock<Arc<dyn SelectionPolicy>>,
    reselect: RwLock<Option<ReselectConfig>>,
    stats: Stats,
    trace: Arc<Trace>,
    shutdown: AtomicBool,
    /// Progress passes completed; every 64th pass runs the deadline/idle
    /// sweep over bulk pulls, stripe assemblies, and gather rounds.
    passes: AtomicU64,
    /// Sharded worker pool servicing this context's readiness tier when
    /// [`Context::start_workers`] is active; `None` means the single
    /// progress thread (or inline `progress` calls) does everything.
    workers: Mutex<Option<crate::shard::WorkerPool>>,
    /// Typed extension storage for protocol layers built on the context
    /// (e.g. the global-pointer reply plumbing).
    extensions: Mutex<HashMap<std::any::TypeId, Arc<dyn std::any::Any + Send + Sync>>>,
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("id", &self.info.id)
            .field("node", &self.info.node)
            .field("partition", &self.info.partition)
            .field("methods", &self.table.methods())
            .finish()
    }
}

impl Context {
    /// The context's id.
    pub fn id(&self) -> ContextId {
        self.info.id
    }

    /// Placement facts (id, node, partition).
    pub fn info(&self) -> ContextInfo {
        self.info
    }

    /// The descriptor table this context advertises (methods usable to
    /// reach it, fastest first).
    pub fn descriptor_table(&self) -> &DescriptorTable {
        &self.table
    }

    fn fabric(&self) -> Result<Arc<FabricInner>> {
        self.fabric.upgrade().ok_or(NexusError::ShutDown)
    }

    /// The module registry backing this context.
    pub fn registry(&self) -> Result<Arc<ModuleRegistry>> {
        Ok(Arc::clone(&self.fabric()?.registry))
    }

    // -- endpoints & handlers ------------------------------------------------

    /// Creates a new endpoint in this context.
    pub fn create_endpoint(&self) -> EndpointId {
        let id = EndpointId(self.next_endpoint.fetch_add(1, Ordering::Relaxed));
        self.endpoints.write().insert(id, EndpointState::default());
        id
    }

    /// Attaches a local object to an endpoint, making startpoints bound to
    /// it global names for the object.
    pub fn attach(&self, ep: EndpointId, data: Attached) -> Result<()> {
        match self.endpoints.write().get_mut(&ep) {
            Some(s) => {
                s.attached = Some(data);
                Ok(())
            }
            None => Err(NexusError::UnknownEndpoint(ep.0)),
        }
    }

    /// Destroys an endpoint. In-flight RSRs to it will fail at dispatch.
    pub fn destroy_endpoint(&self, ep: EndpointId) -> bool {
        self.endpoints.write().remove(&ep).is_some()
    }

    /// Registers a handler procedure under `name`.
    pub fn register_handler<F>(&self, name: &str, f: F)
    where
        F: Fn(HandlerArgs<'_>) + Send + Sync + 'static,
    {
        self.handlers.register(name, f);
    }

    /// The handler registry (for enquiry and unregistration).
    pub fn handlers(&self) -> &HandlerRegistry {
        &self.handlers
    }

    // -- startpoints -----------------------------------------------------------

    /// Creates a startpoint bound to a local endpoint, carrying this
    /// context's descriptor table.
    pub fn startpoint_to(&self, ep: EndpointId) -> Result<Startpoint> {
        self.make_startpoint(ep, false)
    }

    /// Creates a *lightweight* startpoint bound to a local endpoint: its
    /// wire form omits the descriptor table (the receiver reconstructs it
    /// from the fabric), per the §3.1 optimization for tightly coupled
    /// systems.
    pub fn startpoint_to_lightweight(&self, ep: EndpointId) -> Result<Startpoint> {
        self.make_startpoint(ep, true)
    }

    fn make_startpoint(&self, ep: EndpointId, lightweight: bool) -> Result<Startpoint> {
        if !self.endpoints.read().contains_key(&ep) {
            return Err(NexusError::UnknownEndpoint(ep.0));
        }
        let mut sp = Startpoint::unbound();
        sp.add_link(Link::new(
            Target {
                context: self.info.id,
                endpoint: ep,
            },
            self.table.clone(),
            lightweight,
        ));
        Ok(sp)
    }

    /// Resolves the descriptor table of another context via the fabric —
    /// used when unpacking lightweight startpoints.
    pub fn lookup_descriptor_table(&self, ctx: ContextId) -> Result<DescriptorTable> {
        let fab = self.fabric()?;
        let c = fab
            .contexts
            .read()
            .get(&ctx)
            .cloned()
            .ok_or(NexusError::UnknownContext(ctx))?;
        Ok(c.descriptor_table().clone())
    }

    // -- selection ---------------------------------------------------------------

    /// Replaces the automatic selection policy (default:
    /// [`FirstApplicable`]).
    pub fn set_policy(&self, policy: Arc<dyn SelectionPolicy>) {
        *self.policy.write() = policy;
    }

    /// Name of the active selection policy (enquiry).
    pub fn policy_name(&self) -> &'static str {
        self.policy.read().name()
    }

    /// Enables cost-driven live link re-selection (the paper's §6
    /// "adaptive method selection"): every `check_every` successful sends
    /// on a link, the measured send cost of the current method is compared
    /// against the measured costs of the other applicable methods; after
    /// `consecutive` agreeing checks on the same cheaper method, the link
    /// migrates its communication object in place. `None` disables the
    /// mechanism (the default).
    pub fn set_reselection(&self, cfg: Option<ReselectConfig>) {
        *self.reselect.write() = cfg;
    }

    /// Current re-selection configuration (enquiry).
    pub fn reselection(&self) -> Option<ReselectConfig> {
        *self.reselect.read()
    }

    /// Enquiry: methods of `sp`'s first link applicable from this context,
    /// in priority order.
    pub fn applicable_methods(&self, sp: &Startpoint) -> Result<Vec<MethodId>> {
        let reg = self.registry()?;
        let link = sp.links().first().ok_or(NexusError::UnboundStartpoint)?;
        Ok(crate::selection::applicable_methods(
            &self.info,
            &link.table(),
            &reg,
        ))
    }

    /// Enquiry: the methods this context has receive sources for.
    pub fn enabled_methods(&self) -> Vec<MethodId> {
        self.poll.lock().methods()
    }

    /// Selects (if necessary) and returns the communication object for a
    /// link. This is where automatic vs manual selection and the
    /// communication-object cache come together.
    fn resolve_link(&self, link: &Link, pinned: Option<MethodId>) -> Result<Arc<SelectedMethod>> {
        {
            let chosen = link.chosen.lock();
            if let Some(sel) = chosen.as_ref() {
                if pinned.is_none_or(|p| p == sel.method) {
                    return Ok(Arc::clone(sel));
                }
            }
        }
        let reg = self.registry()?;
        let table = link.table();
        let method = match pinned {
            Some(p) => {
                let module = reg.resolve(p).ok_or(NexusError::UnknownMethod(p))?;
                let desc = table.get(p).ok_or(NexusError::MethodNotApplicable {
                    method: p,
                    target: link.target.context,
                })?;
                if !module.applicable(&self.info, desc) {
                    return Err(NexusError::MethodNotApplicable {
                        method: p,
                        target: link.target.context,
                    });
                }
                p
            }
            None => self.policy.read().select(&self.info, &table, &reg).ok_or(
                NexusError::NoApplicableMethod {
                    target: link.target.context,
                },
            )?,
        };
        self.select_into_link(link, method, &table)
    }

    /// Connects `method` for a link, stores the selection (with cached
    /// recording handles) on the link, and traces the method switch.
    fn select_into_link(
        &self,
        link: &Link,
        method: MethodId,
        table: &DescriptorTable,
    ) -> Result<Arc<SelectedMethod>> {
        let obj = self.connect_cached(link.target.context, method, table)?;
        let sel = Arc::new(SelectedMethod {
            method,
            obj,
            counters: self.stats.method(method),
            ltrace: self.trace.link(link.target.context, method),
        });
        let prev = {
            let mut chosen = link.chosen.lock();
            let prev = chosen.as_ref().map(|s| s.method);
            *chosen = Some(Arc::clone(&sel));
            prev
        };
        if prev != Some(method) {
            self.trace.record_event(TraceEventKind::MethodSwitch {
                target: link.target.context,
                from: prev,
                to: method,
            });
        }
        Ok(sel)
    }

    /// Returns the (possibly cached) communication object for
    /// (`target`, `method`), connecting if necessary.
    fn connect_cached(
        &self,
        target: ContextId,
        method: MethodId,
        table: &DescriptorTable,
    ) -> Result<Arc<dyn CommObject>> {
        if let Some(obj) = self.comm_cache.lock().get(&(target, method)) {
            return Ok(Arc::clone(obj));
        }
        let reg = self.registry()?;
        let module = reg
            .resolve(method)
            .ok_or(NexusError::UnknownMethod(method))?;
        let desc = table
            .get(method)
            .ok_or(NexusError::MethodNotApplicable { method, target })?;
        let obj = module.connect(&self.info, desc)?;
        self.comm_cache
            .lock()
            .insert((target, method), Arc::clone(&obj));
        Ok(obj)
    }

    /// Enquiry: number of distinct communication objects currently cached.
    pub fn cached_connections(&self) -> usize {
        self.comm_cache.lock().len()
    }

    // -- RSR issue ------------------------------------------------------------

    /// Issues a remote service request on `sp`: for each endpoint linked to
    /// the startpoint, transfers `payload` to the endpoint's context and
    /// invokes `handler` there (asynchronously; this call returns once the
    /// data is handed to each link's communication method).
    pub fn rsr(&self, sp: &Startpoint, handler: &str, payload: Buffer) -> Result<()> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        if sp.is_unbound() {
            return Err(NexusError::UnboundStartpoint);
        }
        // One Rsr and one WireFrame serve every link: only the (Copy)
        // destination fields differ per link, and the frame body — which
        // depends solely on handler and payload — is encoded at most once
        // no matter how many links, methods, or failover retries are
        // involved. The handler name is interned here, once.
        let mut msg = Rsr::new(ContextId(0), EndpointId(0), handler, payload.into_bytes());
        let frame = WireFrame::new();
        for link in sp.links() {
            msg.dest = link.target.context;
            msg.endpoint = link.target.endpoint;
            self.send_with_failover(link, &msg, &frame)?;
        }
        // Hand the frame's storage back to the thread-local pool when no
        // transport kept a reference (the common case).
        frame.reclaim();
        Ok(())
    }

    /// Issues a remote service request with the Mercury-style
    /// eager/rendezvous split: links whose
    /// [`Link::rendezvous_cutoff`] the payload does not exceed get the
    /// ordinary inline RSR (byte-identical to [`Context::rsr`]), while
    /// links it does exceed get a small `#bulk` announce carrying a
    /// [`BulkHandle`] — the payload is registered in this context's
    /// [`BulkRegistry`] and the receiver pulls it on demand (in-place
    /// borrow over in-process methods, pipelined chunks over wire
    /// methods). With no cutoffs configured ([`Context::set_rendezvous`])
    /// every link is eager and this is exactly `rsr`.
    pub fn rsr_bulk(&self, sp: &Startpoint, handler: &str, payload: Buffer) -> Result<()> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        if sp.is_unbound() {
            return Err(NexusError::UnboundStartpoint);
        }
        if handler.as_bytes().first() == Some(&b'#') {
            return Err(NexusError::UnknownHandler(handler.to_owned()));
        }
        let bytes = payload.into_bytes();
        let len = bytes.len();
        let links = sp.links();
        let pulls = links.iter().filter(|l| len > l.rendezvous_cutoff()).count();
        if pulls == 0 {
            return self.rsr(sp, handler, Buffer::from_bytes(bytes));
        }
        // Register once for however many links will pull, and build one
        // announce shared by all of them (dest fields vary per link).
        let bs = self.bulk_state();
        let region = bs.registry.register(
            bytes.clone(),
            pulls as u32,
            Some(Instant::now() + bs.deadline()),
        );
        self.trace.record_event(TraceEventKind::BulkExpose {
            region,
            bytes: len as u64,
        });
        let handle = BulkHandle {
            region,
            len: len as u64,
            origin: self.info.id,
            hints: 0,
        };
        let mut abuf = pool::take(bulk::HANDLE_LEN + handler.len());
        abuf.extend_from_slice(&handle.to_bytes());
        abuf.extend_from_slice(handler.as_bytes());
        let mut announce = Rsr {
            dest: ContextId(0),
            endpoint: EndpointId(0),
            handler: bulk::bulk_handler(),
            ttl: crate::rsr::DEFAULT_TTL,
            payload: abuf.freeze(),
        };
        let aframe = WireFrame::new();
        let mut msg = Rsr::new(ContextId(0), EndpointId(0), handler, bytes);
        let frame = WireFrame::new();
        let mut out = Ok(());
        for link in links {
            let (m, f) = if len > link.rendezvous_cutoff() {
                (&mut announce, &aframe)
            } else {
                (&mut msg, &frame)
            };
            m.dest = link.target.context;
            m.endpoint = link.target.endpoint;
            out = self.send_with_failover(link, m, f);
            if out.is_err() {
                break;
            }
        }
        frame.reclaim();
        aframe.reclaim();
        pool::reclaim(announce.payload);
        out
    }

    /// Sets the eager/rendezvous cutoff on every link of `sp`: payloads
    /// strictly larger than `cutoff` bytes are sent by
    /// [`Context::rsr_bulk`] as a pull handle instead of an inline body.
    /// `usize::MAX` restores the all-eager default.
    pub fn set_rendezvous(&self, sp: &Startpoint, cutoff: usize) {
        for link in sp.links() {
            link.rendezvous_cutoff.store(cutoff, Ordering::Relaxed);
        }
    }

    /// Sends one RSR over a link's selected method, failing over to the
    /// next applicable method when the connection errors (§1's "switch
    /// among alternative communication substrates in the event of error").
    /// Pinned links do not fail over — manual selection means the
    /// application took responsibility. Each failed method is excluded
    /// from re-selection and its cached connection is evicted; the chosen
    /// replacement sticks for subsequent sends.
    fn send_with_failover(&self, link: &Link, msg: &Rsr, frame: &WireFrame) -> Result<()> {
        let wire = msg.wire_len();
        // One pinned read serves the send loop, selection, and the
        // re-selection check below.
        let pinned_method = *link.pinned.lock();
        let pinned = pinned_method.is_some();
        // lint:allow(hot-path-alloc) empty Vec never allocates; it only grows after a send error
        let mut failed: Vec<MethodId> = Vec::new();
        loop {
            let sel = if failed.is_empty() {
                self.resolve_link(link, pinned_method)?
            } else {
                self.reselect_excluding(link, &failed)?
            };
            let start = Instant::now();
            link.send_begin();
            let sent = sel.obj.send(msg, frame);
            link.send_end();
            match sent {
                Ok(()) => {
                    // Steady-state recording: atomics only, through the
                    // handles cached on the link's selection; the event
                    // timestamp reuses the end-of-send clock reading.
                    let end = Instant::now();
                    let cost_ns = end.duration_since(start).as_nanos() as u64;
                    sel.counters.note_send(wire);
                    sel.ltrace.send_latency_ns.record(cost_ns);
                    sel.ltrace.send_bytes.record(wire as u64);
                    sel.ltrace.send_cost_ns.record(cost_ns as f64);
                    self.trace.record_event_at(
                        end,
                        TraceEventKind::Send {
                            target: link.target.context,
                            method: sel.method,
                            wire_bytes: wire as u64,
                        },
                    );
                    if !pinned {
                        self.consider_reselect(link, sel.method);
                    }
                    return Ok(());
                }
                Err(e) => {
                    let method = sel.method;
                    sel.obj.close();
                    link.invalidate();
                    self.comm_cache
                        .lock()
                        .remove(&(link.target.context, method));
                    self.stats.record_failover(method);
                    self.trace.record_event(TraceEventKind::Failover {
                        target: link.target.context,
                        from: method,
                    });
                    if pinned {
                        return Err(e);
                    }
                    failed.push(method);
                }
            }
        }
    }

    /// Cost-driven live re-selection (§6's proposed adaptive method
    /// selection, implemented): every `check_every` successful sends,
    /// compare the link's measured send cost against the measured costs
    /// of the other applicable methods; once `consecutive` checks agree
    /// on the same cheaper method, migrate the link's communication
    /// object in place. Unlike failover, the previous object is healthy
    /// and stays cached — this is a policy move, so concurrent sends are
    /// drained before the switch and no connection is torn down.
    fn consider_reselect(&self, link: &Link, current: MethodId) {
        let Some(cfg) = *self.reselect.read() else {
            return;
        };
        {
            let mut st = link.reselect.lock();
            st.sends_since_check += 1;
            if st.sends_since_check < cfg.check_every.max(1) {
                return;
            }
            st.sends_since_check = 0;
        }
        let Ok(reg) = self.registry() else {
            return;
        };
        let table = link.table();
        let cand = selection::reselect_candidate(
            &self.info,
            link.target.context,
            &table,
            &reg,
            &self.trace,
            current,
            &cfg,
        );
        let migrate_to = {
            let mut st = link.reselect.lock();
            match cand {
                Some(c) => {
                    if st.candidate == Some(c.method) {
                        st.streak += 1;
                    } else {
                        st.candidate = Some(c.method);
                        st.streak = 1;
                    }
                    if st.streak >= cfg.consecutive.max(1) {
                        st.candidate = None;
                        st.streak = 0;
                        Some(c.method)
                    } else {
                        None
                    }
                }
                None => {
                    st.candidate = None;
                    st.streak = 0;
                    None
                }
            }
        };
        let Some(to) = migrate_to else {
            return;
        };
        // Drain: give concurrent sends over the old object a bounded
        // window to finish, so the switch lands between messages rather
        // than alongside one.
        let deadline = Instant::now() + Duration::from_millis(10);
        while link.sends_in_flight() > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        // select_into_link records the MethodSwitch trace event.
        let _ = self.select_into_link(link, to, &table);
    }

    /// Re-runs selection for a link with `excluded` methods removed, and
    /// stores the new choice on the link.
    fn reselect_excluding(
        &self,
        link: &Link,
        excluded: &[MethodId],
    ) -> Result<Arc<SelectedMethod>> {
        let reg = self.registry()?;
        let table = link.table();
        let policy = self.policy.read().clone();
        let wrapper = ExcludeMethods::new(policy, excluded.iter().copied());
        let method =
            wrapper
                .select(&self.info, &table, &reg)
                .ok_or(NexusError::NoApplicableMethod {
                    target: link.target.context,
                })?;
        self.select_into_link(link, method, &table)
    }

    // -- progress / dispatch -----------------------------------------------------

    /// Sets the skip_poll value for `method`: its receiver is probed on
    /// every `k`-th invocation of the unified polling function (§3.3).
    pub fn set_skip_poll(&self, method: MethodId, k: u64) -> bool {
        let (ok, before) = {
            // lint:allow(lock-order) name-link artifact: `eng.skip_poll` is the lock-free PollEngine accessor, not the Context wrapper that re-locks `poll`
            let mut eng = self.poll.lock();
            let before = eng.skip_poll(method);
            (eng.set_skip_poll(method, k), before)
        };
        let to = k.max(1);
        if ok && before != Some(to) {
            self.trace.record_event(TraceEventKind::SkipPollChange {
                method,
                from: before.unwrap_or(0),
                to,
            });
        }
        ok
    }

    /// Current skip_poll value for `method`.
    pub fn skip_poll(&self, method: MethodId) -> Option<u64> {
        self.poll.lock().skip_poll(method)
    }

    /// Enables adaptive skip_poll control for `method`: the skip value
    /// falls when the method carries traffic and grows while it is silent
    /// (the paper's proposed future refinement of §3.3, implemented).
    pub fn set_adaptive_skip_poll(
        &self,
        method: MethodId,
        cfg: crate::poll::AdaptiveSkipPoll,
    ) -> bool {
        self.poll.lock().set_adaptive(method, cfg)
    }

    /// Moves `method` out of the poll rotation into a dedicated blocking
    /// receive thread (the refinement for systems whose transport supports
    /// blocking, §3.3). Fails if the module does not support blocking.
    pub fn start_blocking_poller(&self, method: MethodId) -> Result<()> {
        let reg = self.registry()?;
        let module = reg
            .resolve(method)
            .ok_or(NexusError::UnknownMethod(method))?;
        if !module.supports_blocking() {
            return Err(NexusError::BadParam {
                key: "blocking".to_owned(),
                reason: format!("method {method} does not support blocking receives"),
            });
        }
        let receiver = self
            .poll
            .lock()
            .remove_source(method)
            .ok_or(NexusError::UnknownMethod(method))?;
        let poller = BlockingPoller::spawn_instrumented(
            method,
            receiver,
            Duration::from_millis(10),
            Some(self.stats.method(method)),
            Some(Arc::clone(&self.trace)),
        )?;
        {
            let mut blocking = self.blocking.lock();
            blocking.push(poller);
            self.blocking_count.store(blocking.len(), Ordering::Release);
        }
        Ok(())
    }

    /// Runs one pass of the unified polling function and dispatches every
    /// retrieved RSR (message-driven execution). Returns the number of
    /// messages handled. Handlers run *without* internal locks held, so
    /// they may freely issue RSRs or even call `progress` again.
    pub fn progress(&self) -> Result<usize> {
        thread_local! {
            /// Reused pass outcome: a steady-state progress pass performs
            /// no allocation. Reentrant passes (a handler calling
            /// `progress` while the outer pass still borrows the scratch)
            /// fall back to a fresh outcome.
            static SCRATCH: std::cell::RefCell<PollOutcome> =
                std::cell::RefCell::new(PollOutcome::default());
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut out) => self.progress_with(&mut out),
            Err(_) => self.progress_with(&mut PollOutcome::default()),
        })
    }

    fn progress_with(&self, out: &mut PollOutcome) -> Result<usize> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        out.clear();
        // Drain blocking pollers first: their thread already paid the
        // wait. The atomic count keeps the (typical) no-poller case free
        // of the lock round trip.
        if self.blocking_count.load(Ordering::Acquire) > 0 {
            let blocking = self.blocking.lock();
            for p in blocking.iter() {
                while let Some(m) = p.try_pop() {
                    out.messages.push((p.method(), m));
                }
            }
        }
        {
            let mut eng = self.poll.lock();
            eng.poll_once_into(out);
        }
        // Per-probe counters and poll-cost EWMAs were recorded lock-free
        // inside the engine, through the handles bound at construction.
        for sc in &out.skip_changes {
            self.trace.record_event(TraceEventKind::SkipPollChange {
                method: sc.method,
                from: sc.from,
                to: sc.to,
            });
        }
        for &(method, drained) in &out.ready_wakeups {
            self.trace
                .record_event(TraceEventKind::ReadyWakeup { method, drained });
        }
        // A transport error from one source must not swallow traffic the
        // pass retrieved: dispatch everything first, then report the
        // earliest error (poll errors before dispatch errors). Errors that
        // lose the race for the return value are still observable: they go
        // into the event ring as `PollError` events, so a pass where two
        // sources fail at once does not hide the second failure.
        let mut first_err: Option<NexusError> = None;
        for (method, e) in out.errors.drain(..) {
            if first_err.is_none() {
                first_err = Some(e);
            } else {
                self.trace.record_event(TraceEventKind::PollError {
                    method,
                    consecutive: 1,
                });
            }
        }
        let n = out.messages.len();
        // Recv counters/histograms were already recorded where the
        // message was retrieved (poll engine source or blocking-poller
        // thread), through handles cached there. Here we only stamp the
        // pass's Recv events — with a single clock reading — and run the
        // handlers.
        let pass_at = if n > 0 { Some(Instant::now()) } else { None };
        for (method, msg) in out.messages.drain(..) {
            let wire = msg.wire_len();
            self.trace.record_event_at(
                pass_at.expect("set when any message exists"),
                TraceEventKind::Recv {
                    method,
                    wire_bytes: wire as u64,
                },
            );
            if let Err(e) = self.dispatch(method, msg) {
                if first_err.is_none() {
                    first_err = Some(e);
                } else {
                    self.trace.record_event(TraceEventKind::PollError {
                        method,
                        consecutive: 1,
                    });
                }
            }
        }
        // Periodic housekeeping rides the progress loop: every 64th pass
        // evicts idle chunk transfers and expires bulk deadlines, so a
        // dead sender costs a bounded amount of memory and a bounded
        // wait — never a hang.
        self.sweep_deadlines();
        match first_err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Calls [`Context::progress`] until `pred()` is true or `timeout`
    /// elapses. Returns whether the predicate was satisfied.
    pub fn progress_until<F: FnMut() -> bool>(&self, mut pred: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            match self.progress() {
                Ok(n) if n > 0 => {}
                // A shut-down context can never make progress again;
                // spinning out the rest of the timeout would only burn a
                // core. One last predicate check covers a racing waker.
                Err(NexusError::ShutDown) => return pred(),
                // Any other error may be a single failing source among
                // several; keep waiting — another method can still
                // satisfy the predicate before the deadline.
                _ => std::thread::yield_now(),
            }
        }
    }

    /// Spawns a thread that drives this context's progress until the
    /// returned guard is dropped. Convenience for applications that want
    /// message-driven execution without structuring their own loop; the
    /// thread yields the CPU whenever a pass finds nothing (important on
    /// machines with few hardware threads).
    pub fn spawn_progress_thread(self: &Arc<Self>) -> ProgressGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("nexus-progress-{}", self.info.id))
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match ctx.progress() {
                        Ok(n) if n > 0 => {}
                        // Shutdown is terminal: exit instead of spinning
                        // until the guard is dropped.
                        Err(NexusError::ShutDown) => break,
                        _ => std::thread::yield_now(),
                    }
                }
            })
            .expect("spawn progress thread");
        ProgressGuard {
            stop,
            handle: Some(handle),
        }
    }

    /// Dispatches one received RSR: runs the named handler if the RSR is
    /// addressed to this context, otherwise acts as a forwarding node and
    /// re-sends it to its destination over a different method.
    fn dispatch(&self, arrival: MethodId, msg: Rsr) -> Result<()> {
        if msg.dest != self.info.id {
            return self.forward(arrival, msg);
        }
        // Reserved runtime handlers ('#'-prefixed: stripe chunks, gather
        // contributions, bulk protocol traffic) are intercepted before
        // endpoint lookup — a chunk is addressed to whatever endpoint the
        // original RSR targeted, but it is the *reassembled* message that
        // must resolve there (and the bulk handlers repurpose the
        // endpoint field as protocol state outright).
        if msg.handler.as_bytes().first() == Some(&b'#') {
            if msg.handler.as_bytes().starts_with(b"#bulk") {
                return self.bulk_ingest(arrival, msg);
            }
            return self.stripe_ingest(arrival, msg);
        }
        let ep = {
            let eps = self.endpoints.read();
            let state = eps
                .get(&msg.endpoint)
                .ok_or(NexusError::UnknownEndpoint(msg.endpoint.0))?;
            EndpointRef {
                id: msg.endpoint,
                attached: state.attached.clone(),
            }
        };
        let handler = self
            .handlers
            .get(&msg.handler)
            .ok_or_else(|| NexusError::UnknownHandler(msg.handler.to_string()))?;
        let mut buf = Buffer::from_bytes(msg.payload);
        self.stats
            .handler_invocations
            .fetch_add(1, Ordering::Relaxed);
        handler(HandlerArgs {
            context: self,
            endpoint: ep,
            buffer: &mut buf,
        });
        Ok(())
    }

    /// Forwarding-node path: re-send an RSR addressed to another context,
    /// excluding the method it arrived on (which the destination cannot
    /// receive directly — that is why the traffic came here).
    fn forward(&self, arrival: MethodId, mut msg: Rsr) -> Result<()> {
        if msg.ttl == 0 {
            return Err(NexusError::Decode("RSR TTL exhausted while forwarding"));
        }
        msg.ttl -= 1;
        let table = self.lookup_descriptor_table(msg.dest)?;
        let reg = self.registry()?;
        let policy = ExcludeMethods::new(FirstApplicable, [arrival]);
        let method = policy
            .select(&self.info, &table, &reg)
            .ok_or(NexusError::NoApplicableMethod { target: msg.dest })?;
        let obj = self.connect_cached(msg.dest, method, &table)?;
        // A fresh frame per forwarded message: the decremented ttl lives
        // in the per-send header, so this still encodes the body at most
        // once even if the message hops onward over a wire transport.
        let frame = WireFrame::new();
        obj.send(&msg, &frame)?;
        frame.reclaim();
        self.stats.record_forward(arrival);
        self.stats.record_send(method, msg.wire_len());
        Ok(())
    }

    // -- striping / collectives ----------------------------------------------------

    /// Per-context stripe plumbing, created lazily on first use.
    fn stripe_state(&self) -> Arc<StripeState> {
        self.extension(StripeState::default)
    }

    /// Consumes one reserved-handler RSR: files the chunk with the
    /// appropriate assembler and, when it completes a transfer, either
    /// re-dispatches the reassembled message (stripe) or invokes the
    /// registered collective callback (gather).
    fn stripe_ingest(&self, arrival: MethodId, msg: Rsr) -> Result<()> {
        let st = self.stripe_state();
        if msg.handler == stripe::STRIPE_HANDLER {
            let Some(done) = st.stripes.ingest(msg.payload)? else {
                return Ok(());
            };
            let body = st.stripes.assemble_body(done)?;
            let inner = Rsr::decode_body(msg.dest, msg.endpoint, msg.ttl, body.clone())?;
            if inner.handler.as_bytes().first() == Some(&b'#') {
                // A reassembled body must carry an application handler;
                // permitting nesting would allow unbounded recursion.
                return Err(NexusError::Decode("stripe body nests a reserved handler"));
            }
            let out = self.dispatch(arrival, inner);
            // The handler has run and the payload view is dropped: the
            // reassembled body storage goes back to the pool.
            pool::reclaim(body);
            out
        } else if msg.handler == stripe::GATHER_HANDLER {
            let Some(done) = st.gather_chunks.ingest(msg.payload)? else {
                return Ok(());
            };
            let mixed = done.transfer_id;
            let (round, mut parts) = st.gather_chunks.take_parts(done)?;
            let reg = {
                let gathers = st.gathers.lock();
                gathers.get(&(mixed ^ gather_round_mix(round))).cloned()
            };
            let Some(reg) = reg else {
                return Err(NexusError::Decode("gather completion with no registration"));
            };
            if reg.parts as usize != parts.len() {
                return Err(NexusError::Decode("gather arity mismatch"));
            }
            (reg.callback)(round, &mut parts);
            Ok(())
        } else {
            Err(NexusError::UnknownHandler(msg.handler.to_string()))
        }
    }

    // -- bulk pull engine ---------------------------------------------------------

    /// Per-context bulk plumbing, created lazily on first use.
    fn bulk_state(&self) -> Arc<BulkState> {
        self.extension(BulkState::default)
    }

    /// Consumes one `#bulk*` RSR (see [`crate::bulk`] for the wire
    /// formats): an announce files a pending pull and requests the
    /// region; a pull request is served by the pull engine; a
    /// whole-region or chunked response completes the pending pull and
    /// re-dispatches the payload under the application handler the
    /// announce named.
    fn bulk_ingest(&self, arrival: MethodId, msg: Rsr) -> Result<()> {
        let bs = self.bulk_state();
        if msg.handler == bulk::BULK_HANDLER {
            let (handle, name) = bulk::parse_announce(&msg.payload)?;
            // Intern before reclaiming the payload `name` borrows;
            // alloc-free when the handler name repeats.
            let pending = PendingPull {
                handler: HandlerName::intern(name),
                endpoint: msg.endpoint,
                ttl: msg.ttl,
                len: handle.len,
                deadline: Instant::now() + bs.deadline(),
            };
            bs.pulls.lock().insert(handle.region, pending);
            pool::reclaim(msg.payload);
            // Pull immediately: a 4-byte request carrying this context's
            // id, so the origin knows which connection to serve over.
            let mut rbuf = pool::take(4);
            rbuf.extend_from_slice(&self.info.id.0.to_le_bytes());
            let req = Rsr {
                dest: handle.origin,
                endpoint: EndpointId(handle.region),
                handler: bulk::bulk_get_handler(),
                ttl: crate::rsr::DEFAULT_TTL,
                payload: rbuf.freeze(),
            };
            let out = self.bulk_send_direct(&bs, handle.origin, &req);
            pool::reclaim(req.payload);
            out
        } else if msg.handler == bulk::BULK_GET_HANDLER {
            self.bulk_pull_service(msg)
        } else if msg.handler == bulk::BULK_DAT_HANDLER {
            let region = msg.endpoint.0;
            let pending = bs.pulls.lock().remove(&region);
            let Some(p) = pending else {
                // Late response to a pull the sweep already timed out.
                return Ok(());
            };
            if msg.payload.len() as u64 != p.len {
                // Empty (or truncated) response: the origin denied the
                // pull — cancelled, expired, or unknown region.
                self.trace
                    .record_event(TraceEventKind::BulkAbort { region });
                return Ok(());
            }
            self.trace.record_event(TraceEventKind::BulkDone {
                region,
                bytes: p.len,
            });
            self.dispatch(
                arrival,
                Rsr {
                    dest: msg.dest,
                    endpoint: p.endpoint,
                    handler: p.handler,
                    ttl: p.ttl,
                    payload: msg.payload,
                },
            )
        } else if msg.handler == bulk::BULK_CHK_HANDLER {
            let Some(done) = bs.chunks.ingest(msg.payload)? else {
                return Ok(());
            };
            let region = done.transfer_id;
            let body = bs.chunks.assemble_body(done)?;
            let pending = bs.pulls.lock().remove(&region);
            let Some(p) = pending else {
                pool::reclaim(body);
                return Ok(());
            };
            if body.len() as u64 != p.len {
                self.trace
                    .record_event(TraceEventKind::BulkAbort { region });
                pool::reclaim(body);
                return Ok(());
            }
            self.trace.record_event(TraceEventKind::BulkDone {
                region,
                bytes: p.len,
            });
            let out = self.dispatch(
                arrival,
                Rsr {
                    dest: msg.dest,
                    endpoint: p.endpoint,
                    handler: p.handler,
                    ttl: p.ttl,
                    payload: body.clone(),
                },
            );
            pool::reclaim(body);
            out
        } else {
            Err(NexusError::UnknownHandler(msg.handler.to_string()))
        }
    }

    /// The pull engine: services one `#bulk-get` request. Over a
    /// region-mapping method the response is the registered region
    /// itself (a zero-copy borrow of the origin's storage); over wire
    /// methods the region streams as pipelined chunks across every
    /// applicable rail, reusing the stripe chunk framing. A region that
    /// is unknown, cancelled, or expired is answered with an empty
    /// denial so the receiver aborts instead of waiting out its
    /// deadline.
    fn bulk_pull_service(&self, msg: Rsr) -> Result<()> {
        let bs = self.bulk_state();
        let region = msg.endpoint.0;
        if msg.payload.len() < 4 {
            return Err(NexusError::Decode("bulk pull request missing receiver id"));
        }
        let receiver = ContextId(u32::from_le_bytes(
            msg.payload[..4].try_into().expect("length checked"),
        ));
        pool::reclaim(msg.payload);
        let route = self.bulk_route(&bs, receiver)?;
        let Some(guard) = bs.registry.begin_pull(region) else {
            self.trace
                .record_event(TraceEventKind::BulkAbort { region });
            let deny = Rsr {
                dest: receiver,
                endpoint: EndpointId(region),
                handler: bulk::bulk_dat_handler(),
                ttl: crate::rsr::DEFAULT_TTL,
                payload: Bytes::new(),
            };
            return self.bulk_send_direct(&bs, receiver, &deny);
        };
        let data = guard.data().clone();
        if route.map {
            self.trace.record_event(TraceEventKind::BulkServe {
                region,
                chunked: false,
            });
            let resp = Rsr {
                dest: receiver,
                endpoint: EndpointId(region),
                handler: bulk::bulk_dat_handler(),
                ttl: crate::rsr::DEFAULT_TTL,
                payload: data,
            };
            return self.bulk_send_direct(&bs, receiver, &resp);
        }
        self.trace.record_event(TraceEventKind::BulkServe {
            region,
            chunked: true,
        });
        let n = route.rails.len();
        let mut rates = [f64::NAN; stripe::MAX_RAILS];
        for (i, rail) in route.rails.iter().enumerate() {
            rates[i] = rail.rate();
        }
        let mut shares = [0usize; stripe::MAX_RAILS];
        stripe::weighted_shares(
            data.len(),
            &rates[..n],
            stripe::DEFAULT_MIN_CHUNK,
            &mut shares[..n],
        );
        // Same floor as striped_send: keeps the chunk count within the
        // assembler's receipt bitmap.
        let seg_cap = stripe::MAX_CHUNK_PAYLOAD.max(data.len().div_ceil(stripe::MAX_CHUNKS - n));
        let chunk_rsr = Rsr {
            dest: receiver,
            endpoint: EndpointId(region),
            handler: bulk::bulk_chk_handler(),
            ttl: crate::rsr::DEFAULT_TTL,
            payload: Bytes::new(),
        };
        let sent = stripe::send_chunks(
            &route.rails[..n],
            &chunk_rsr,
            region,
            &data,
            &shares[..n],
            seg_cap,
        );
        if sent.is_err() {
            // Every rail failed: drop the cached route so the next pull
            // reconnects from scratch.
            bs.routes.lock().remove(&receiver);
        }
        sent
    }

    /// Returns the (possibly cached) pull route to `target`: the fastest
    /// applicable communication object, whether it maps regions
    /// in-process, and — when it does not — one rail per applicable
    /// method for streaming chunks.
    fn bulk_route(&self, bs: &BulkState, target: ContextId) -> Result<Arc<BulkRoute>> {
        if let Some(r) = bs.routes.lock().get(&target) {
            return Ok(Arc::clone(r));
        }
        let table = self.lookup_descriptor_table(target)?;
        let reg = self.registry()?;
        let methods = selection::applicable_methods(&self.info, &table, &reg);
        let Some(&first) = methods.first() else {
            return Err(NexusError::NoApplicableMethod { target });
        };
        let best = self.connect_cached(target, first, &table)?;
        let map = best.supports_region_map();
        // lint:allow(hot-path-alloc) route construction runs once per cache miss (connect time), then every pull reuses the cached Arc
        let mut rails = Vec::new();
        if !map {
            rails.reserve(methods.len().min(stripe::MAX_RAILS));
            for m in methods.into_iter().take(stripe::MAX_RAILS) {
                rails.push(StripeRail {
                    obj: self.connect_cached(target, m, &table)?,
                    ltrace: Some(self.trace.link(target, m)),
                    weight: None,
                });
            }
        }
        let route = Arc::new(BulkRoute { best, map, rails });
        bs.routes.lock().insert(target, Arc::clone(&route));
        Ok(route)
    }

    /// Sends one protocol RSR over the cached best route to `target`,
    /// evicting the route on error so the next exchange reconnects.
    fn bulk_send_direct(&self, bs: &BulkState, target: ContextId, msg: &Rsr) -> Result<()> {
        let route = self.bulk_route(bs, target)?;
        let frame = WireFrame::new();
        let sent = route.best.send(msg, &frame);
        frame.reclaim();
        if sent.is_err() {
            bs.routes.lock().remove(&target);
        }
        sent
    }

    /// Cancels an exposed bulk region before its pulls complete. Pending
    /// pulls at other contexts are denied on request (or expire on their
    /// own deadline). Returns whether the region was still registered.
    pub fn bulk_cancel(&self, region: u64) -> bool {
        let bs = self.bulk_state();
        let released = bs.registry.release(region);
        if released {
            self.trace
                .record_event(TraceEventKind::BulkAbort { region });
        }
        released
    }

    /// Enquiry: regions this context currently exposes for pull.
    pub fn bulk_regions(&self) -> usize {
        self.bulk_state().registry.len()
    }

    /// Enquiry: pulls this context has requested but not yet completed.
    pub fn bulk_pulls_pending(&self) -> usize {
        self.bulk_state().pulls.lock().len()
    }

    /// Sets the per-transfer deadline for bulk regions this context
    /// exposes and pulls it requests (default 5 s). Expiry surfaces as
    /// [`TraceEventKind::BulkTimeout`] events, never a hang.
    pub fn set_bulk_deadline(&self, deadline: Duration) {
        self.bulk_state()
            .deadline_ns
            .store(deadline.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Sets the idle-transfer timeout (default 5 s) for incomplete
    /// stripe and gather chunk transfers: a transfer whose sender goes
    /// quiet that long is evicted and its slots reclaimed — the fate of
    /// a gather round with a dead contributor or a stripe whose rail
    /// died mid-stream.
    pub fn set_idle_timeout(&self, timeout: Duration) {
        self.stripe_state()
            .idle_timeout_ns
            .store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Every 64th progress pass: evict idle incomplete chunk transfers
    /// (stripe, gather, bulk) and expire bulk regions and pending pulls
    /// past their deadline, surfacing each as a trace event. Touches
    /// only subsystems this context has actually used.
    fn sweep_deadlines(&self) {
        if self.passes.fetch_add(1, Ordering::Relaxed) & 63 != 0 {
            return;
        }
        if let Some(st) = self.try_extension::<StripeState>() {
            let idle = st.idle_timeout();
            for ev in st.stripes.sweep_idle(idle) {
                self.trace.record_event(TraceEventKind::StripeIdleEvict {
                    transfer_id: ev.transfer_id,
                });
            }
            for ev in st.gather_chunks.sweep_idle(idle) {
                self.trace.record_event(TraceEventKind::GatherTimeout {
                    transfer_id: ev.transfer_id,
                    received: ev.received,
                    expected: ev.total,
                });
            }
        }
        if let Some(bs) = self.try_extension::<BulkState>() {
            let now = Instant::now();
            for region in bs.registry.sweep(now) {
                self.trace
                    .record_event(TraceEventKind::BulkTimeout { region });
            }
            // Collect expired pulls under the lock, record the events
            // after releasing it (the trace takes its own lock).
            let expired: Vec<u64> = {
                let mut pulls = bs.pulls.lock();
                let ids: Vec<u64> = pulls
                    .iter()
                    .filter(|(_, p)| now >= p.deadline)
                    .map(|(&id, _)| id)
                    .collect();
                for id in &ids {
                    pulls.remove(id);
                }
                ids
            };
            for region in expired {
                self.trace
                    .record_event(TraceEventKind::BulkTimeout { region });
            }
            for ev in bs.chunks.sweep_idle(bs.deadline()) {
                self.trace.record_event(TraceEventKind::BulkTimeout {
                    region: ev.transfer_id,
                });
            }
        }
    }

    /// Installs a [`StripedObject`] on each of `sp`'s links that has at
    /// least two applicable methods: subsequent `rsr` calls on those links
    /// transparently stripe bodies larger than `cutoff` bytes across every
    /// applicable method at once (weighted by measured bandwidth), while
    /// smaller messages pass through whole on the fastest method. Links
    /// with fewer than two applicable methods are left untouched. Returns
    /// the number of links striped.
    ///
    /// The stripe selection is installed unpinned, so transport failures
    /// still trigger the normal failover path (the stripe object retries
    /// chunks over surviving rails internally first), and a later
    /// [`Context::set_method`]/policy change simply replaces it.
    pub fn set_striped(&self, sp: &Startpoint, cutoff: usize) -> Result<usize> {
        let reg = self.registry()?;
        let mut striped = 0usize;
        for link in sp.links() {
            let table = link.table();
            let methods = selection::applicable_methods(&self.info, &table, &reg);
            if methods.len() < 2 {
                continue;
            }
            let mut rails = Vec::with_capacity(methods.len().min(stripe::MAX_RAILS));
            for m in methods.into_iter().take(stripe::MAX_RAILS) {
                rails.push(StripeRail {
                    obj: self.connect_cached(link.target.context, m, &table)?,
                    ltrace: Some(self.trace.link(link.target.context, m)),
                    weight: None,
                });
            }
            let obj: Arc<dyn CommObject> = Arc::new(StripedObject::new(rails).with_cutoff(cutoff));
            let sel = Arc::new(SelectedMethod {
                method: MethodId::STRIPE,
                obj,
                counters: self.stats.method(MethodId::STRIPE),
                ltrace: self.trace.link(link.target.context, MethodId::STRIPE),
            });
            let prev = {
                let mut chosen = link.chosen.lock();
                let prev = chosen.as_ref().map(|s| s.method);
                *chosen = Some(sel);
                prev
            };
            if prev != Some(MethodId::STRIPE) {
                self.trace.record_event(TraceEventKind::MethodSwitch {
                    target: link.target.context,
                    from: prev,
                    to: MethodId::STRIPE,
                });
            }
            striped += 1;
        }
        Ok(striped)
    }

    /// Scatter collective (CommBench's striped-scatter root half): splits
    /// `payload` into one contiguous piece per link of `sp` — even split,
    /// earlier links absorbing the remainder — and sends piece *i* to link
    /// *i* as an ordinary RSR on `handler`. Pieces are zero-copy views of
    /// the payload; combined with [`Context::set_striped`] each piece is
    /// itself striped across that link's rails.
    pub fn scatter(&self, sp: &Startpoint, handler: &str, payload: Buffer) -> Result<()> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        if sp.is_unbound() {
            return Err(NexusError::UnboundStartpoint);
        }
        let bytes = payload.into_bytes();
        let links = sp.links();
        let each = bytes.len() / links.len();
        let rem = bytes.len() % links.len();
        let mut msg = Rsr::new(ContextId(0), EndpointId(0), handler, Bytes::new());
        let mut off = 0usize;
        for (i, link) in links.iter().enumerate() {
            let len = each + usize::from(i < rem);
            msg.dest = link.target.context;
            msg.endpoint = link.target.endpoint;
            msg.payload = bytes.slice(off..off + len);
            off += len;
            // Per-link frames: unlike a multicast, every link carries a
            // different body.
            let frame = WireFrame::new();
            let sent = self.send_with_failover(link, &msg, &frame);
            frame.reclaim();
            sent?;
        }
        Ok(())
    }

    /// Registers this context as the root of the gather collective
    /// `name` over `parts` contributors (at most
    /// [`stripe::MAX_CHUNKS`]). Each time all `parts` contributions of a
    /// round have arrived — in any order, over any mix of methods —
    /// `callback(round, parts)` runs with the contributions in
    /// contributor-index order.
    pub fn register_gather<F>(&self, name: &str, parts: u16, callback: F) -> Result<()>
    where
        F: Fn(u32, &mut [Bytes]) + Send + Sync + 'static,
    {
        if parts == 0 || parts as usize > stripe::MAX_CHUNKS {
            return Err(NexusError::BadParam {
                key: "parts".to_owned(),
                reason: format!("gather arity must be 1..={}", stripe::MAX_CHUNKS),
            });
        }
        let st = self.stripe_state();
        st.gathers.lock().insert(
            gather_id(name),
            Arc::new(GatherReg {
                parts,
                callback: Box::new(callback),
            }),
        );
        Ok(())
    }

    /// Contributes this context's piece to round `round` of the gather
    /// collective `name` rooted at `sp`'s target: contributor `index` of
    /// `parts`. The root must have called [`Context::register_gather`]
    /// with the same name and arity.
    pub fn gather(
        &self,
        sp: &Startpoint,
        name: &str,
        parts: u16,
        index: u16,
        round: u32,
        payload: Buffer,
    ) -> Result<()> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(NexusError::ShutDown);
        }
        if sp.is_unbound() {
            return Err(NexusError::UnboundStartpoint);
        }
        if parts == 0 || parts as usize > stripe::MAX_CHUNKS || index >= parts {
            return Err(NexusError::BadParam {
                key: "index".to_owned(),
                reason: format!("need index < parts <= {}", stripe::MAX_CHUNKS),
            });
        }
        let bytes = payload.into_bytes();
        let meta = StripeMeta {
            transfer_id: gather_id(name) ^ gather_round_mix(round),
            index,
            total: parts,
            body_len: 0, // slot mode: parts stay separate
            offset: round,
        }
        .to_bytes();
        let mut buf = pool::take(meta.len() + bytes.len());
        buf.extend_from_slice(&meta);
        buf.extend_from_slice(&bytes);
        let mut msg = Rsr {
            dest: ContextId(0),
            endpoint: EndpointId(0),
            handler: gather_handler(),
            ttl: crate::rsr::DEFAULT_TTL,
            payload: buf.freeze(),
        };
        let frame = WireFrame::new();
        let mut out = Ok(());
        for link in sp.links() {
            msg.dest = link.target.context;
            msg.endpoint = link.target.endpoint;
            out = self.send_with_failover(link, &msg, &frame);
            if out.is_err() {
                break;
            }
        }
        frame.reclaim();
        pool::reclaim(msg.payload);
        out
    }

    // -- sharded workers ----------------------------------------------------------

    /// Moves this context's readiness tier onto a pool of `n` shard
    /// worker threads: doorbells route to per-worker shards and both the
    /// drain and the handler run on the worker that pops the token.
    /// Returns the number of sources adopted (0 if nothing is armed).
    ///
    /// The polled tier (and blocking pollers) stay with `progress`;
    /// calling `progress` concurrently remains valid — it simply no
    /// longer sees the adopted sources. Idempotent in the sense that a
    /// second call stops the previous pool first.
    pub fn start_workers(self: &Arc<Self>, n: usize) -> usize {
        self.stop_workers();
        let pool = crate::shard::WorkerPool::new(n);
        let adopted = pool.adopt(self);
        *self.workers.lock() = Some(pool);
        adopted
    }

    /// Stops the shard workers (if any) and re-arms their sources back
    /// into this context's own poll engine, restoring single-threaded
    /// progress semantics.
    pub fn stop_workers(&self) {
        // Take the pool out first, join outside the lock: a worker mid
        // dispatch can call back into the context, and `into_sources`
        // joins those threads (PR 6 rule — never hold a lock across a
        // join or close).
        let pool = self.workers.lock().take();
        let Some(pool) = pool else { return };
        for (method, ctx, receiver) in pool.into_sources() {
            match ctx.upgrade() {
                Some(c) => c.restore_source(method, receiver),
                None => {
                    let mut r = receiver;
                    r.close();
                }
            }
        }
    }

    /// Worker-pool snapshot of per-shard service counters, if workers
    /// are running.
    pub fn worker_stats(&self) -> Option<Vec<crate::shard::ShardSnapshot>> {
        self.workers.lock().as_ref().map(|p| p.shard_stats())
    }

    /// Removes this context's armed readiness-tier sources from the
    /// engine and returns them for adoption by a worker pool.
    pub(crate) fn release_armed_sources(&self) -> Vec<(MethodId, Box<dyn CommReceiver>)> {
        self.poll.lock().take_armed()
    }

    /// Re-installs a source released by [`Context::release_armed_sources`]
    /// (or refused by a pool): back into the engine, re-bound to stats
    /// and trace, re-armed into the readiness tier.
    pub(crate) fn restore_source(&self, method: MethodId, receiver: Box<dyn CommReceiver>) {
        // lint:allow(lock-across-blocking) arm_ready installs a doorbell via set_ready_signal; the pump-loop sleep the lint attributes to that fn runs on the pump's own spawned thread, never in this caller
        let mut eng = self.poll.lock();
        eng.add_source(method, receiver);
        eng.bind(&self.stats, &self.trace);
        eng.arm_ready(method);
    }

    /// Dispatches one message drained by a shard worker, with the same
    /// trace events a progress pass would record. Dispatch errors land
    /// in the event ring — there is no progress-pass return value to
    /// carry them on a worker thread.
    pub(crate) fn deliver_sharded(&self, method: MethodId, msg: Rsr) {
        self.trace.record_event(TraceEventKind::Recv {
            method,
            wire_bytes: msg.wire_len() as u64,
        });
        if let Err(e) = self.dispatch(method, msg) {
            let _ = e;
            self.trace.record_event(TraceEventKind::PollError {
                method,
                consecutive: 1,
            });
        }
    }

    /// Records a transport poll error observed on a worker thread.
    pub(crate) fn note_sharded_error(&self, method: MethodId, _e: &NexusError) {
        self.trace.record_event(TraceEventKind::PollError {
            method,
            consecutive: 1,
        });
    }

    /// Records one completed doorbell service by a worker thread.
    pub(crate) fn note_ready_wakeup(&self, method: MethodId, drained: u64) {
        self.trace
            .record_event(TraceEventKind::ReadyWakeup { method, drained });
    }

    // -- stats / shutdown ---------------------------------------------------------

    /// The context's statistics block (enquiry).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The context's observability layer (enquiry): per-`(link, method)`
    /// latency/size histograms, measured poll-cost EWMAs, and the event
    /// ring. `self.trace().render()` exports it as plain text.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enquiry: measured cost estimate for `method` — the poll-cost EWMA
    /// from the unified polling function and the send-cost EWMA across
    /// this context's links using the method. Values are `None` until the
    /// runtime has taken the corresponding measurement.
    pub fn method_cost_estimate(&self, method: MethodId) -> MethodCostEstimate {
        selection::method_cost_estimate(&self.trace, method)
    }

    /// Enquiry: distribution of measured transport-send latency (ns) on
    /// the link to `target` over `method`, or `None` if nothing has been
    /// sent that way.
    pub fn link_latency(&self, target: ContextId, method: MethodId) -> Option<HistogramSummary> {
        self.trace
            .get_link(target, method)
            .and_then(|t| t.send_latency_ns.summary())
    }

    /// Returns this context's extension of type `T`, creating it with
    /// `init` on first use. Protocol layers (e.g. global pointers) use
    /// this for per-context plumbing without a global registry.
    pub fn extension<T, F>(&self, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let key = std::any::TypeId::of::<T>();
        if let Some(e) = self.extensions.lock().get(&key) {
            return Arc::clone(e).downcast::<T>().expect("keyed by TypeId");
        }
        // Build outside the lock: init may call back into the context.
        let value = Arc::new(init());
        let mut g = self.extensions.lock();
        let entry = g
            .entry(key)
            .or_insert_with(|| Arc::clone(&value) as Arc<dyn std::any::Any + Send + Sync>);
        Arc::clone(entry).downcast::<T>().expect("keyed by TypeId")
    }

    /// Returns this context's extension of type `T` only if it already
    /// exists. The periodic sweep uses this so contexts that never
    /// touched a subsystem pay nothing for it.
    fn try_extension<T>(&self) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
    {
        let key = std::any::TypeId::of::<T>();
        self.extensions
            .lock()
            .get(&key)
            .map(|e| Arc::clone(e).downcast::<T>().expect("keyed by TypeId"))
    }

    /// Stops receive processing and releases transport resources.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        // Shard workers first: they are the other threads still driving
        // receivers, and the pool's shutdown services pending doorbells,
        // joins the workers, and closes the adopted receivers — all
        // before the engine below is drained. Taken out of the mutex and
        // shut down with no lock held (workers call back into `self`).
        let pool = self.workers.lock().take();
        if let Some(pool) = pool {
            pool.shutdown();
        }
        // Drain under the lock, close after releasing it: receiver close()
        // joins pump threads, and holding the engine lock through that
        // would wedge any concurrent progress pass for the whole shutdown
        // (and deadlock outright if a closing thread ever needs the engine).
        let receivers = self.poll.lock().drain_sources();
        for mut r in receivers {
            r.close();
        }
        self.blocking.lock().clear(); // Drop impl stops the threads.
        self.blocking_count.store(0, Ordering::Release);
        let cache = std::mem::take(&mut *self.comm_cache.lock());
        for obj in cache.values() {
            obj.close();
        }
    }
}

impl Drop for Context {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Stops and joins a context's progress thread when dropped.
pub struct ProgressGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressGuard {
    /// Stops the progress thread now (equivalent to dropping the guard).
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        self.halt();
    }
}

// ---------------------------------------------------------------------------
// Stripe / collective plumbing (context extension)
// ---------------------------------------------------------------------------

/// One registered gather root: expected arity and the completion callback.
struct GatherReg {
    parts: u16,
    #[allow(clippy::type_complexity)]
    callback: Box<dyn Fn(u32, &mut [Bytes]) + Send + Sync>,
}

/// Default idle-transfer timeout: how long an incomplete chunk transfer
/// may go without a new chunk before the sweep evicts it.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default per-transfer deadline for bulk regions and pending pulls.
const DEFAULT_BULK_DEADLINE: Duration = Duration::from_secs(5);

/// Per-context stripe state, attached lazily via [`Context::extension`]:
/// separate assemblers for stripe and gather chunks (their transfer-id
/// spaces are independent) and the gather registrations.
struct StripeState {
    stripes: StripeAssembler,
    gather_chunks: StripeAssembler,
    gathers: Mutex<HashMap<u64, Arc<GatherReg>>>,
    /// Idle-transfer eviction threshold, nanoseconds.
    idle_timeout_ns: AtomicU64,
}

impl Default for StripeState {
    fn default() -> Self {
        StripeState {
            stripes: StripeAssembler::new(),
            gather_chunks: StripeAssembler::new(),
            gathers: Mutex::new(HashMap::new()),
            idle_timeout_ns: AtomicU64::new(DEFAULT_IDLE_TIMEOUT.as_nanos() as u64),
        }
    }
}

impl StripeState {
    fn idle_timeout(&self) -> Duration {
        Duration::from_nanos(self.idle_timeout_ns.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Bulk pull plumbing (context extension)
// ---------------------------------------------------------------------------

/// One cached pull route to a peer context.
struct BulkRoute {
    /// The fastest applicable communication object.
    best: Arc<dyn CommObject>,
    /// Whether `best` maps regions in-process (whole-region zero-copy
    /// responses); when false, responses stream as chunks over `rails`.
    map: bool,
    /// One rail per applicable method, fastest first (empty when `map`).
    rails: Vec<StripeRail>,
}

/// A pull this context has requested but not yet completed: everything
/// needed to re-dispatch the region under the application handler the
/// announce named, plus the deadline after which the sweep gives up.
struct PendingPull {
    handler: HandlerName,
    endpoint: EndpointId,
    ttl: u8,
    len: u64,
    deadline: Instant,
}

/// Per-context bulk state, attached lazily via [`Context::extension`]:
/// the exposed-region registry, pulls awaiting responses, a dedicated
/// assembler for `#bulk-chk` chunks (region ids and stripe transfer ids
/// are independent namespaces — separate assemblers mean they can never
/// collide), cached pull routes, and the transfer deadline.
struct BulkState {
    registry: BulkRegistry,
    pulls: Mutex<HashMap<u64, PendingPull>>,
    chunks: StripeAssembler,
    routes: Mutex<HashMap<ContextId, Arc<BulkRoute>>>,
    /// Per-transfer deadline, nanoseconds.
    deadline_ns: AtomicU64,
}

impl Default for BulkState {
    fn default() -> Self {
        BulkState {
            registry: BulkRegistry::new(),
            pulls: Mutex::new(HashMap::new()),
            chunks: StripeAssembler::new(),
            routes: Mutex::new(HashMap::new()),
            deadline_ns: AtomicU64::new(DEFAULT_BULK_DEADLINE.as_nanos() as u64),
        }
    }
}

impl BulkState {
    fn deadline(&self) -> Duration {
        Duration::from_nanos(self.deadline_ns.load(Ordering::Relaxed))
    }
}

/// Transfer-id namespace for the gather collective `name`.
fn gather_id(name: &str) -> u64 {
    use std::hash::BuildHasher;
    FxBuildHasher::default().hash_one(name)
}

/// Mixes a gather round into the transfer id, so consecutive rounds of one
/// collective never share an in-flight transfer (XOR-invertible: the
/// completion path recovers the registration id from the round tag).
fn gather_round_mix(round: u32) -> u64 {
    (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::test_support::TestModule;
    use std::sync::atomic::AtomicU32;

    /// Fabric with partition-scoped "mpl" (rank 10) and universal "tcp"
    /// (rank 30).
    fn fabric() -> Fabric {
        let f = Fabric::new();
        f.registry()
            .register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, true)));
        f.registry()
            .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        f
    }

    #[test]
    fn context_descriptor_table_is_fastest_first() {
        let f = fabric();
        let c = f.create_context().unwrap();
        assert_eq!(
            c.descriptor_table().methods(),
            vec![MethodId::MPL, MethodId::TCP]
        );
        assert_eq!(c.enabled_methods(), vec![MethodId::MPL, MethodId::TCP]);
    }

    #[test]
    fn rsr_same_partition_picks_mpl_and_delivers() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(1), PartitionId(1)).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("hit", move |args| {
            assert_eq!(args.buffer.get_u32().unwrap(), 77);
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        let mut buf = Buffer::new();
        buf.put_u32(77);
        a.rsr(&sp, "hit", buf).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::MPL));
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
        assert_eq!(a.stats().snapshot_method(MethodId::MPL).sends, 1);
        assert_eq!(b.stats().snapshot_method(MethodId::MPL).recvs, 1);
    }

    #[test]
    fn rsr_cross_partition_falls_back_to_tcp() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(8), PartitionId(2)).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("hit", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::TCP));
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
    }

    #[test]
    fn manual_pin_overrides_automatic_selection() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(1), PartitionId(1)).unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        sp.set_method(MethodId::TCP);
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::TCP));
        assert_eq!(a.stats().snapshot_method(MethodId::TCP).sends, 1);
        // Unpin: next send re-selects the faster method.
        sp.clear_method();
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::MPL));
    }

    #[test]
    fn pin_to_inapplicable_method_errors() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(9), PartitionId(2)).unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        sp.set_method(MethodId::MPL); // different partition: not applicable
        match a.rsr(&sp, "hit", Buffer::new()) {
            Err(NexusError::MethodNotApplicable { method, .. }) => {
                assert_eq!(method, MethodId::MPL)
            }
            other => panic!("expected MethodNotApplicable, got {other:?}"),
        }
    }

    #[test]
    fn comm_objects_are_shared_between_startpoints() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep1 = b.create_endpoint();
        let ep2 = b.create_endpoint();
        let sp1 = b.startpoint_to(ep1).unwrap();
        let sp2 = b.startpoint_to(ep2).unwrap();
        a.rsr(&sp1, "hit", Buffer::new()).unwrap();
        a.rsr(&sp2, "hit", Buffer::new()).unwrap();
        // Same (target context, method): one cached connection.
        assert_eq!(a.cached_connections(), 1);
    }

    #[test]
    fn multicast_startpoint_delivers_to_all_endpoints() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let c = f.create_context().unwrap();
        let count = Arc::new(AtomicU32::new(0));
        for ctx in [&b, &c] {
            let k = Arc::clone(&count);
            ctx.register_handler("hit", move |_| {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        let ep_b = b.create_endpoint();
        let ep_c = c.create_endpoint();
        let mut sp = b.startpoint_to(ep_b).unwrap();
        sp.merge(&c.startpoint_to(ep_c).unwrap());
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        b.progress().unwrap();
        c.progress().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn startpoint_travels_inside_rsr_and_replies_flow_back() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        // a sets up a reply endpoint and ships its startpoint to b; b's
        // handler unpacks it and RSRs back.
        let got = Arc::new(AtomicU32::new(0));
        let g = Arc::clone(&got);
        a.register_handler("reply", move |args| {
            g.store(args.buffer.get_u32().unwrap(), Ordering::Relaxed);
        });
        b.register_handler("request", move |args| {
            let mut sp = Startpoint::unpack(args.buffer, args.context).unwrap();
            let x = args.buffer.get_u32().unwrap();
            let mut reply = Buffer::new();
            reply.put_u32(x * 2);
            args.context.rsr(&sp, "reply", reply).unwrap();
            sp.unbind(sp.targets()[0]); // exercise unbind on the copy
        });
        let ep_a = a.create_endpoint();
        let reply_sp = a.startpoint_to(ep_a).unwrap();
        let ep_b = b.create_endpoint();
        let req_sp = b.startpoint_to(ep_b).unwrap();
        let mut buf = Buffer::new();
        reply_sp.pack(&mut buf);
        buf.put_u32(21);
        a.rsr(&req_sp, "request", buf).unwrap();
        b.progress().unwrap();
        assert!(a.progress_until(|| got.load(Ordering::Relaxed) == 42, Duration::from_secs(1)));
    }

    #[test]
    fn lightweight_startpoint_resolves_table_from_fabric() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let ep = b.create_endpoint();
        let sp = b.startpoint_to_lightweight(ep).unwrap();
        let mut buf = Buffer::new();
        sp.pack(&mut buf);
        let sp2 = Startpoint::unpack(&mut buf, &a).unwrap();
        assert_eq!(
            sp2.links()[0].table().methods(),
            b.descriptor_table().methods()
        );
    }

    #[test]
    fn forwarding_node_relays_to_destination() {
        let f = fabric();
        // Forwarder and worker share partition 1; the external context is
        // in partition 2 and can only use TCP. The worker does not enable
        // TCP itself; its TCP descriptor routes through the forwarder.
        let forwarder = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let worker = f
            .create_context_with(ContextOpts {
                node: NodeId(1),
                partition: PartitionId(1),
                methods: Some(vec![MethodId::MPL]),
                forward_via: Some(ForwardVia {
                    method: MethodId::TCP,
                    forwarder: forwarder.id(),
                }),
            })
            .unwrap();
        let external = f.create_context_at(NodeId(9), PartitionId(2)).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        worker.register_handler("hit", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = worker.create_endpoint();
        let sp = worker.startpoint_to(ep).unwrap();
        // The worker's table advertises MPL (own) + TCP (via forwarder).
        assert_eq!(
            worker.descriptor_table().methods(),
            vec![MethodId::MPL, MethodId::TCP]
        );
        external.rsr(&sp, "hit", Buffer::new()).unwrap();
        // Message lands at the forwarder over TCP...
        forwarder.progress().unwrap();
        assert_eq!(forwarder.stats().snapshot_method(MethodId::TCP).forwards, 1);
        // ...and reaches the worker over MPL.
        assert!(worker.progress_until(|| hits.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
        assert_eq!(worker.stats().snapshot_method(MethodId::MPL).recvs, 1);
    }

    #[test]
    fn unknown_handler_is_an_error_at_dispatch() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.rsr(&sp, "nope", Buffer::new()).unwrap();
        match b.progress() {
            Err(NexusError::UnknownHandler(h)) => assert_eq!(h, "nope"),
            other => panic!("expected UnknownHandler, got {other:?}"),
        }
    }

    #[test]
    fn destroyed_endpoint_fails_dispatch() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        assert!(b.destroy_endpoint(ep));
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert!(matches!(b.progress(), Err(NexusError::UnknownEndpoint(_))));
    }

    #[test]
    fn unbound_startpoint_rsr_errors() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let sp = Startpoint::unbound();
        assert!(matches!(
            a.rsr(&sp, "x", Buffer::new()),
            Err(NexusError::UnboundStartpoint)
        ));
    }

    #[test]
    fn restricting_methods_limits_the_table() {
        let f = fabric();
        let c = f
            .create_context_with(ContextOpts {
                methods: Some(vec![MethodId::TCP]),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(c.descriptor_table().methods(), vec![MethodId::TCP]);
        let bad = f.create_context_with(ContextOpts {
            methods: Some(vec![MethodId::UDP]),
            ..Default::default()
        });
        assert!(matches!(bad, Err(NexusError::UnknownMethod(_))));
    }

    #[test]
    fn endpoint_attachment_reaches_handlers() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let seen = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&seen);
        b.register_handler("read", move |args| {
            let v = args.endpoint.attached_as::<AtomicU32>().unwrap();
            s.store(v.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        b.attach(ep, Arc::new(AtomicU32::new(123))).unwrap();
        let sp = b.startpoint_to(ep).unwrap();
        a.rsr(&sp, "read", Buffer::new()).unwrap();
        b.progress().unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn shutdown_refuses_further_work() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        f.shutdown();
        assert!(matches!(
            a.rsr(&sp, "hit", Buffer::new()),
            Err(NexusError::ShutDown)
        ));
        assert!(matches!(a.progress(), Err(NexusError::ShutDown)));
        assert!(f.create_context().is_err());
    }

    #[test]
    fn progress_thread_drives_delivery() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("hit", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        let guard = b.spawn_progress_thread();
        for _ in 0..50 {
            a.rsr(&sp, "hit", Buffer::new()).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 50 {
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
        guard.stop();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn forwarding_loop_is_cut_by_ttl() {
        // Two contexts that each claim the other as their TCP forwarder:
        // a message neither can deliver bounces until the TTL kills it.
        let f = fabric();
        let x = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let y = f.create_context_at(NodeId(1), PartitionId(1)).unwrap();
        // Craft an RSR addressed to a third, nonexistent context and
        // inject it at x as if it had arrived over TCP.
        let msg = Rsr::new(
            ContextId(99),
            crate::endpoint::EndpointId(1),
            "h",
            bytes::Bytes::new(),
        );
        // x forwarding fails because context 99 does not exist.
        assert!(matches!(
            x.dispatch(MethodId::TCP, msg),
            Err(NexusError::UnknownContext(_))
        ));
        // A zero-TTL message is dropped with a decode error, never re-sent.
        let mut dead = Rsr::new(
            y.id(),
            crate::endpoint::EndpointId(1),
            "h",
            bytes::Bytes::new(),
        );
        dead.ttl = 0;
        assert!(matches!(
            x.dispatch(MethodId::TCP, dead),
            Err(NexusError::Decode(_))
        ));
    }

    #[test]
    fn concurrent_senders_and_receiver_threads() {
        // 4 sender contexts hammer one receiver from their own threads
        // while the receiver progresses on another; nothing is lost.
        let f = fabric();
        let rx = f.create_context().unwrap();
        let total = Arc::new(AtomicU32::new(0));
        {
            let t = Arc::clone(&total);
            rx.register_handler("n", move |_| {
                t.fetch_add(1, Ordering::Relaxed);
            });
        }
        let ep = rx.create_endpoint();
        const PER_SENDER: u32 = 200;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tx = f.create_context().unwrap();
                let sp = rx.startpoint_to(ep).unwrap();
                s.spawn(move || {
                    for _ in 0..PER_SENDER {
                        tx.rsr(&sp, "n", Buffer::new()).unwrap();
                    }
                });
            }
            let rx = Arc::clone(&rx);
            let t = Arc::clone(&total);
            s.spawn(move || {
                assert!(rx.progress_until(
                    || t.load(Ordering::Relaxed) == 4 * PER_SENDER,
                    Duration::from_secs(30),
                ));
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * PER_SENDER);
    }

    #[test]
    fn send_failure_fails_over_to_next_method() {
        use crate::module::fault_support::FlakyModule;
        let f = Fabric::new();
        let flaky = Arc::new(FlakyModule::new(MethodId::MPL, "flaky-mpl", 10));
        f.registry().register(Arc::clone(&flaky) as _);
        f.registry()
            .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("hit", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        // First send: healthy fast path.
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::MPL));
        // Break the fast path: the next RSR must fail over to TCP and
        // still be delivered.
        flaky.set_broken(true);
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::TCP));
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) == 2, Duration::from_secs(1)));
        assert_eq!(a.stats().snapshot_method(MethodId::MPL).failovers, 1);
        // The replacement sticks: a third send goes straight over TCP with
        // no further failed attempts on the broken method.
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(a.stats().snapshot_method(MethodId::MPL).failovers, 1);
        assert_eq!(a.stats().snapshot_method(MethodId::TCP).sends, 2);
    }

    #[test]
    fn pinned_link_does_not_fail_over() {
        use crate::module::fault_support::FlakyModule;
        let f = Fabric::new();
        let flaky = Arc::new(FlakyModule::new(MethodId::MPL, "flaky-mpl", 10));
        flaky.set_broken(true);
        f.registry().register(Arc::clone(&flaky) as _);
        f.registry()
            .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        sp.set_method(MethodId::MPL);
        assert!(matches!(
            a.rsr(&sp, "hit", Buffer::new()),
            Err(NexusError::ConnectionClosed)
        ));
    }

    #[test]
    fn failover_with_no_alternative_reports_no_applicable_method() {
        use crate::module::fault_support::FlakyModule;
        let f = Fabric::new();
        let flaky = Arc::new(FlakyModule::new(MethodId::MPL, "flaky-mpl", 10));
        flaky.set_broken(true);
        f.registry().register(Arc::clone(&flaky) as _);
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        assert!(matches!(
            a.rsr(&sp, "hit", Buffer::new()),
            Err(NexusError::NoApplicableMethod { .. })
        ));
    }

    #[test]
    fn skip_poll_is_settable_per_context() {
        let f = fabric();
        let c = f.create_context().unwrap();
        assert!(c.set_skip_poll(MethodId::TCP, 20));
        assert_eq!(c.skip_poll(MethodId::TCP), Some(20));
        assert_eq!(c.skip_poll(MethodId::MPL), Some(1));
        assert!(!c.set_skip_poll(MethodId::UDP, 5));
    }

    /// A receive-only module whose source fails every poll. Send-side it
    /// is never applicable, so it contributes nothing but poll errors.
    struct DeadSourceModule {
        id: MethodId,
        name: &'static str,
        rank: u32,
    }

    struct DeadReceiver;

    impl crate::module::CommReceiver for DeadReceiver {
        fn poll(&mut self) -> Result<Option<Rsr>> {
            Err(NexusError::ConnectionClosed)
        }
    }

    impl crate::module::CommModule for DeadSourceModule {
        fn method(&self) -> MethodId {
            self.id
        }
        fn name(&self) -> &'static str {
            self.name
        }
        fn cost_rank(&self) -> u32 {
            self.rank
        }
        fn open(
            &self,
            _ctx: &ContextInfo,
        ) -> Result<(
            crate::descriptor::CommDescriptor,
            Box<dyn crate::module::CommReceiver>,
        )> {
            Ok((
                crate::descriptor::CommDescriptor::new(self.id, Vec::new()),
                Box::new(DeadReceiver),
            ))
        }
        fn applicable(
            &self,
            _local: &ContextInfo,
            _desc: &crate::descriptor::CommDescriptor,
        ) -> bool {
            false
        }
        fn connect(
            &self,
            _local: &ContextInfo,
            _desc: &crate::descriptor::CommDescriptor,
        ) -> Result<Arc<dyn CommObject>> {
            Err(NexusError::ConnectionClosed)
        }
        fn poll_cost_ns(&self) -> u64 {
            100
        }
    }

    #[test]
    fn progress_until_returns_promptly_after_shutdown() {
        let f = fabric();
        let a = f.create_context().unwrap();
        f.shutdown();
        let t0 = Instant::now();
        assert!(!a.progress_until(|| false, Duration::from_secs(30)));
        // Pre-fix, an `Err` pass counted as "idle" and the wait busy-spun
        // `yield_now` for the full 30 s timeout.
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn simultaneous_source_failures_are_all_observable() {
        let f = Fabric::new();
        f.registry().register(Arc::new(DeadSourceModule {
            id: MethodId::MPL,
            name: "dead-mpl",
            rank: 10,
        }));
        f.registry().register(Arc::new(DeadSourceModule {
            id: MethodId::TCP,
            name: "dead-tcp",
            rank: 30,
        }));
        let c = f.create_context().unwrap();
        // Both sources fail in the same pass. The first (rotation order)
        // is returned to the caller...
        assert!(matches!(c.progress(), Err(NexusError::ConnectionClosed)));
        assert_eq!(c.stats().snapshot_method(MethodId::MPL).poll_errors, 1);
        assert_eq!(c.stats().snapshot_method(MethodId::TCP).poll_errors, 1);
        // ...and the one that lost the race lands in the event ring
        // instead of vanishing (pre-fix it was silently dropped).
        assert!(c.trace().events().iter().any(|e| matches!(
            e.kind,
            TraceEventKind::PollError { method, .. } if method == MethodId::TCP
        )));
    }

    #[test]
    fn readiness_tier_delivers_without_idle_probes() {
        let f = Fabric::new();
        f.registry().register(Arc::new(
            TestModule::new(MethodId::LOCAL, "local", 0, false).with_readiness(),
        ));
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("hit", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
        let snap = b.stats().snapshot_method(MethodId::LOCAL);
        assert_eq!(snap.recvs, 1);
        assert!(snap.ready_wakeups >= 1);
        assert!(b.trace().events().iter().any(|e| matches!(
            e.kind,
            TraceEventKind::ReadyWakeup { method, .. } if method == MethodId::LOCAL
        )));
        // An armed source leaves the polled rotation entirely: idle passes
        // must not probe it even once.
        let polls = b.stats().snapshot_method(MethodId::LOCAL).polls;
        for _ in 0..100 {
            let _ = b.progress();
        }
        assert_eq!(b.stats().snapshot_method(MethodId::LOCAL).polls, polls);
    }

    // -- striping / collectives -----------------------------------------

    fn patterned(len: usize) -> Buffer {
        let mut b = Buffer::new();
        for i in 0..len {
            b.put_raw(&[(i % 251) as u8]);
        }
        b
    }

    #[test]
    fn set_striped_splits_large_bodies_and_reassembles() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(1), PartitionId(1)).unwrap();
        let ok = Arc::new(AtomicU32::new(0));
        let k = Arc::clone(&ok);
        b.register_handler("bulk", move |args| {
            let n = args.buffer.remaining();
            let got = args.buffer.get_raw(n).unwrap();
            assert_eq!(got.len(), 64 * 1024);
            assert!(got.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
            k.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        // Same partition: both mpl and tcp are applicable, so the one
        // link gains a two-rail stripe object.
        assert_eq!(a.set_striped(&sp, 4096).unwrap(), 1);
        a.rsr(&sp, "bulk", patterned(64 * 1024)).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::STRIPE));
        assert!(b.progress_until(|| ok.load(Ordering::Relaxed) == 1, Duration::from_secs(2)));
        assert_eq!(a.stats().snapshot_method(MethodId::STRIPE).sends, 1);
    }

    #[test]
    fn set_striped_passes_small_bodies_through_whole() {
        let f = fabric();
        let a = f.create_context_at(NodeId(0), PartitionId(1)).unwrap();
        let b = f.create_context_at(NodeId(1), PartitionId(1)).unwrap();
        let ok = Arc::new(AtomicU32::new(0));
        let k = Arc::clone(&ok);
        b.register_handler("small", move |args| {
            assert_eq!(args.buffer.get_u32().unwrap(), 9);
            k.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        assert_eq!(a.set_striped(&sp, 4096).unwrap(), 1);
        let mut buf = Buffer::new();
        buf.put_u32(9);
        a.rsr(&sp, "small", buf).unwrap();
        assert!(b.progress_until(|| ok.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
        // No chunks were manufactured: the single message arrived intact
        // on the fastest rail, but accounting stays with the stripe link.
        assert_eq!(a.stats().snapshot_method(MethodId::STRIPE).sends, 1);
    }

    #[test]
    fn set_striped_skips_single_method_links() {
        let f = Fabric::new();
        f.registry()
            .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        b.register_handler("hit", |_| {});
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        assert_eq!(a.set_striped(&sp, 4096).unwrap(), 0);
        a.rsr(&sp, "hit", Buffer::new()).unwrap();
        assert_eq!(sp.current_methods()[0].1, Some(MethodId::TCP));
    }

    #[test]
    fn scatter_sends_one_contiguous_piece_per_link() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let c = f.create_context().unwrap();
        // 10 bytes over 3 links: 4 + 3 + 3, in link order.
        let pieces = Arc::new(Mutex::new(Vec::new()));
        for ctx in [&b, &c] {
            let p = Arc::clone(&pieces);
            ctx.register_handler("piece", move |args| {
                let n = args.buffer.remaining();
                p.lock().push(args.buffer.get_raw(n).unwrap());
            });
        }
        let ep_b1 = b.create_endpoint();
        let ep_b2 = b.create_endpoint();
        let ep_c = c.create_endpoint();
        let mut sp = b.startpoint_to(ep_b1).unwrap();
        sp.merge(&b.startpoint_to(ep_b2).unwrap());
        sp.merge(&c.startpoint_to(ep_c).unwrap());
        a.scatter(&sp, "piece", patterned(10)).unwrap();
        assert!(b.progress_until(|| pieces.lock().len() >= 2, Duration::from_secs(1)));
        assert!(c.progress_until(|| pieces.lock().len() == 3, Duration::from_secs(1)));
        let mut got = pieces.lock().clone();
        got.sort_by_key(|p| p[0]);
        let want: Vec<u8> = (0..10u8).collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], want[0..4]);
        assert_eq!(got[1], want[4..7]);
        assert_eq!(got[2], want[7..10]);
    }

    #[test]
    fn gather_collects_parts_in_index_order_per_round() {
        let f = fabric();
        let root = f.create_context().unwrap();
        let w1 = f.create_context().unwrap();
        let w2 = f.create_context().unwrap();
        let rounds = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&rounds);
        root.register_gather("sum", 2, move |round, parts| {
            let vals: Vec<Vec<u8>> = parts.iter().map(|p| p.to_vec()).collect();
            r.lock().push((round, vals));
        })
        .unwrap();
        let ep = root.create_endpoint();
        let sp1 = root.startpoint_to(ep).unwrap();
        let sp2 = root.startpoint_to(ep).unwrap();
        let part = |byte: u8| {
            let mut b = Buffer::new();
            b.put_raw(&[byte, byte]);
            b
        };
        // Round 7 arrives out of contributor order; round 8 interleaves.
        w2.gather(&sp2, "sum", 2, 1, 7, part(0xB)).unwrap();
        w1.gather(&sp1, "sum", 2, 0, 8, part(0xC)).unwrap();
        w1.gather(&sp1, "sum", 2, 0, 7, part(0xA)).unwrap();
        w2.gather(&sp2, "sum", 2, 1, 8, part(0xD)).unwrap();
        assert!(root.progress_until(|| rounds.lock().len() == 2, Duration::from_secs(2)));
        let done = rounds.lock().clone();
        assert!(done.contains(&(7, vec![vec![0xA, 0xA], vec![0xB, 0xB]])));
        assert!(done.contains(&(8, vec![vec![0xC, 0xC], vec![0xD, 0xD]])));
    }

    #[test]
    fn gather_validates_arity_and_index() {
        let f = fabric();
        let root = f.create_context().unwrap();
        let w = f.create_context().unwrap();
        let ep = root.create_endpoint();
        let sp = root.startpoint_to(ep).unwrap();
        assert!(root.register_gather("g", 0, |_, _| {}).is_err());
        assert!(root.register_gather("g", 65, |_, _| {}).is_err());
        assert!(w.gather(&sp, "g", 2, 2, 0, Buffer::new()).is_err());
        assert!(w.gather(&sp, "g", 0, 0, 0, Buffer::new()).is_err());
    }

    // -- bulk protocol -------------------------------------------------------

    fn event_kinds(ctx: &Context) -> Vec<TraceEventKind> {
        ctx.trace().events().iter().map(|e| e.kind).collect()
    }

    /// Drives both contexts until `pred()` holds (the bulk protocol is a
    /// multi-round exchange: announce, pull request, response).
    fn pump_until<F: FnMut() -> bool>(a: &Context, b: &Context, mut pred: F) -> bool {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if pred() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            let _ = a.progress();
            let _ = b.progress();
        }
    }

    #[test]
    fn rsr_bulk_below_cutoff_stays_eager() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("small", move |args| {
            assert_eq!(args.buffer.remaining(), 100);
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.set_rendezvous(&sp, 1024);
        a.rsr_bulk(&sp, "small", patterned(100)).unwrap();
        // Inline delivery: one progress pass at the receiver suffices, no
        // region was ever registered, and no pull is pending.
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) == 1, Duration::from_secs(1)));
        assert_eq!(a.bulk_regions(), 0);
        assert_eq!(b.bulk_pulls_pending(), 0);
        assert!(!event_kinds(&a)
            .iter()
            .any(|k| matches!(k, TraceEventKind::BulkExpose { .. })));
    }

    #[test]
    fn rsr_bulk_above_cutoff_pulls_region_end_to_end() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.register_handler("big", move |args| {
            let n = args.buffer.remaining();
            g.lock().push(args.buffer.get_raw(n).unwrap());
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.set_rendezvous(&sp, 4096);
        let want: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        a.rsr_bulk(&sp, "big", patterned(64 * 1024)).unwrap();
        // The payload crossed the cutoff: a exposed a region and sent only
        // the announce so far.
        assert_eq!(a.bulk_regions(), 1);
        assert!(pump_until(&a, &b, || !got.lock().is_empty()));
        assert_eq!(&got.lock()[0][..], &want[..]);
        // Lifetime: the single expected pull completed, so the region
        // auto-released; the receiver's pending-pull table drained.
        assert_eq!(a.bulk_regions(), 0);
        assert_eq!(b.bulk_pulls_pending(), 0);
        let ka = event_kinds(&a);
        assert!(ka
            .iter()
            .any(|k| matches!(k, TraceEventKind::BulkExpose { bytes, .. } if *bytes == 64 * 1024)));
        // The test fabric's module does not map regions, so the pull
        // streamed as chunks.
        assert!(ka
            .iter()
            .any(|k| matches!(k, TraceEventKind::BulkServe { chunked: true, .. })));
        assert!(event_kinds(&b)
            .iter()
            .any(|k| matches!(k, TraceEventKind::BulkDone { bytes, .. } if *bytes == 64 * 1024)));
    }

    #[test]
    fn rsr_bulk_mixed_links_split_eager_and_rendezvous() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let c = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for ctx in [&b, &c] {
            let h = Arc::clone(&hits);
            ctx.register_handler("mix", move |args| {
                assert_eq!(args.buffer.remaining(), 32 * 1024);
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        let ep_b = b.create_endpoint();
        let ep_c = c.create_endpoint();
        let mut sp = b.startpoint_to(ep_b).unwrap();
        sp.merge(&c.startpoint_to(ep_c).unwrap());
        // Only c's link crosses into rendezvous; b stays eager.
        for link in sp.links() {
            if link.target.context == c.info().id {
                link.rendezvous_cutoff
                    .store(4096, std::sync::atomic::Ordering::Relaxed);
            }
        }
        a.rsr_bulk(&sp, "mix", patterned(32 * 1024)).unwrap();
        assert_eq!(a.bulk_regions(), 1, "one region for the one pulling link");
        assert!(b.progress_until(|| hits.load(Ordering::Relaxed) >= 1, Duration::from_secs(1)));
        assert!(pump_until(&a, &c, || hits.load(Ordering::Relaxed) == 2));
        assert_eq!(a.bulk_regions(), 0);
    }

    #[test]
    fn expired_region_denies_pull_instead_of_hanging() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("late", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.set_rendezvous(&sp, 1024);
        // A zero deadline expires the region before the pull arrives.
        a.set_bulk_deadline(Duration::ZERO);
        a.rsr_bulk(&sp, "late", patterned(8 * 1024)).unwrap();
        // The receiver's pull is denied with an empty response: its
        // pending entry drains and it records the abort — no hang, no
        // handler invocation.
        assert!(pump_until(&a, &b, || b.bulk_pulls_pending() == 0
            && event_kinds(&b)
                .iter()
                .any(|k| matches!(k, TraceEventKind::BulkAbort { .. }))));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(a.bulk_regions(), 0);
    }

    #[test]
    fn bulk_cancel_mid_protocol_denies_the_pull() {
        let f = fabric();
        let a = f.create_context().unwrap();
        let b = f.create_context().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        b.register_handler("gone", move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        a.set_rendezvous(&sp, 1024);
        a.rsr_bulk(&sp, "gone", patterned(8 * 1024)).unwrap();
        // Recover the region id from the expose event and cancel before
        // the receiver gets to pull.
        let region = event_kinds(&a)
            .iter()
            .find_map(|k| match k {
                TraceEventKind::BulkExpose { region, .. } => Some(*region),
                _ => None,
            })
            .expect("expose event");
        assert!(a.bulk_cancel(region));
        assert!(!a.bulk_cancel(region), "second cancel is a no-op");
        assert_eq!(a.bulk_regions(), 0);
        assert!(pump_until(&a, &b, || b.bulk_pulls_pending() == 0
            && event_kinds(&b)
                .iter()
                .any(|k| matches!(k, TraceEventKind::BulkAbort { .. }))));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gather_with_dead_contributor_times_out_with_event() {
        let f = fabric();
        let root = f.create_context().unwrap();
        let w1 = f.create_context().unwrap();
        let fired = Arc::new(AtomicU32::new(0));
        let fc = Arc::clone(&fired);
        root.register_gather("halfd", 2, move |_, _| {
            fc.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        let ep = root.create_endpoint();
        let sp = root.startpoint_to(ep).unwrap();
        // Contributor 0 reports; contributor 1 is dead and never will.
        w1.gather(&sp, "halfd", 2, 0, 0, patterned(16)).unwrap();
        root.set_idle_timeout(Duration::ZERO);
        // The periodic sweep (every 64th pass) evicts the half-complete
        // round and surfaces the timeout instead of leaking the slots.
        let deadline = Instant::now() + Duration::from_secs(2);
        let timed_out = loop {
            let found = event_kinds(&root).iter().any(|k| {
                matches!(
                    k,
                    TraceEventKind::GatherTimeout {
                        received: 1,
                        expected: 2,
                        ..
                    }
                )
            });
            if found {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            let _ = root.progress();
        };
        assert!(timed_out, "expected a GatherTimeout event");
        assert_eq!(fired.load(Ordering::Relaxed), 0, "callback must not run");
        // A full late round still works: registration survives eviction.
        w1.gather(&sp, "halfd", 2, 0, 1, patterned(16)).unwrap();
        w1.gather(&sp, "halfd", 2, 1, 1, patterned(16)).unwrap();
        assert!(root.progress_until(
            || fired.load(Ordering::Relaxed) == 1,
            Duration::from_secs(2)
        ));
    }
}
