//! Diagnostics for the coupled model: stability criteria, field
//! statistics, and conservation-style time series — the instrumentation a
//! model user runs alongside a multicentury simulation.

use crate::grid::{Grid, StencilParams};

/// Summary statistics of one field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean over owned cells.
    pub mean: f64,
    /// Sum of squares ("energy").
    pub energy: f64,
}

/// Computes summary statistics over a grid's owned cells.
pub fn field_stats(g: &Grid) -> FieldStats {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut energy = 0.0;
    let n = (g.h * g.w) as f64;
    for i in 0..g.h {
        for j in 0..g.w {
            let v = g.get(i, j);
            min = min.min(v);
            max = max.max(v);
            sum += v;
            energy += v * v;
        }
    }
    FieldStats {
        min,
        max,
        mean: sum / n.max(1.0),
        energy,
    }
}

/// Why a parameter set is unstable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StabilityIssue {
    /// Diffusion number `dt·diff·4 > 1` (explicit scheme blows up).
    DiffusionNumber(f64),
    /// Advection CFL `dt·max(|vx|,|vy|) > 1`.
    AdvectionCfl(f64),
    /// Relaxation coefficient outside `[0, 1]` (overshoots the forcing).
    Relaxation(f64),
}

/// Checks the explicit-scheme stability criteria for `p` (unit grid
/// spacing). Returns every violated criterion.
pub fn check_stability(p: StencilParams) -> Vec<StabilityIssue> {
    let mut issues = Vec::new();
    let dn = p.dt * p.diff * 4.0;
    if dn > 1.0 {
        issues.push(StabilityIssue::DiffusionNumber(dn));
    }
    let cfl = p.dt * p.vx.abs().max(p.vy.abs());
    if cfl > 1.0 {
        issues.push(StabilityIssue::AdvectionCfl(cfl));
    }
    if !(0.0..=1.0).contains(&p.relax) {
        issues.push(StabilityIssue::Relaxation(p.relax));
    }
    issues
}

/// A recorded time series of per-step field statistics.
#[derive(Debug, Default, Clone)]
pub struct Series {
    /// One entry per recorded step.
    pub steps: Vec<FieldStats>,
}

impl Series {
    /// Records the current state of a grid.
    pub fn record(&mut self, g: &Grid) {
        self.steps.push(field_stats(g));
    }

    /// Whether the recorded energy is non-increasing within `tol`
    /// (dissipativity check for unforced diffusion).
    pub fn energy_nonincreasing(&self, tol: f64) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[1].energy <= w[0].energy * (1.0 + tol))
    }

    /// Largest |value| seen anywhere in the series (blow-up detector).
    pub fn max_abs(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.min.abs().max(s.max.abs()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupled::{atm_params, ocean_params};
    use crate::grid::{step, wrap_halos};

    #[test]
    fn stats_of_constant_field() {
        let g = Grid::new(4, 4, 0, |_, _| 2.0);
        let s = field_stats(&g);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.energy, 4.0 * 16.0);
    }

    #[test]
    fn paper_model_parameters_are_stable() {
        assert!(check_stability(atm_params()).is_empty());
        assert!(check_stability(ocean_params()).is_empty());
    }

    #[test]
    fn violations_are_reported_individually() {
        let bad = StencilParams {
            dt: 1.0,
            diff: 1.0, // diffusion number 4
            vx: 2.0,   // CFL 2
            vy: 0.0,
            relax: 1.5, // overshoot
        };
        let issues = check_stability(bad);
        assert_eq!(issues.len(), 3);
        assert!(matches!(issues[0], StabilityIssue::DiffusionNumber(d) if d == 4.0));
        assert!(matches!(issues[1], StabilityIssue::AdvectionCfl(c) if c == 2.0));
        assert!(matches!(issues[2], StabilityIssue::Relaxation(r) if r == 1.5));
    }

    #[test]
    fn stable_diffusion_dissipates_energy() {
        let mut g = Grid::new(16, 16, 0, |i, j| ((i * 7 + j * 3) % 5) as f64);
        let p = StencilParams {
            dt: 0.1,
            diff: 1.0,
            vx: 0.0,
            vy: 0.0,
            relax: 0.0,
        };
        assert!(check_stability(p).is_empty());
        let mut series = Series::default();
        series.record(&g);
        for _ in 0..30 {
            wrap_halos(&mut g);
            g = step(&g, p, None);
            series.record(&g);
        }
        // Interior smoothing dissipates; Dirichlet rows pin the ends, so
        // allow a tiny tolerance.
        assert!(series.energy_nonincreasing(1e-9));
        assert!(series.max_abs() <= 4.0 + 1e-12);
    }

    #[test]
    fn unstable_parameters_actually_blow_up() {
        // The checker's point: a violated diffusion number really explodes.
        let mut g = Grid::new(12, 12, 0, |i, j| if i == 6 && j == 6 { 1.0 } else { 0.0 });
        let p = StencilParams {
            dt: 1.0,
            diff: 1.0,
            vx: 0.0,
            vy: 0.0,
            relax: 0.0,
        };
        assert!(!check_stability(p).is_empty(), "checker flags it");
        let mut series = Series::default();
        for _ in 0..20 {
            wrap_halos(&mut g);
            g = step(&g, p, None);
            series.record(&g);
        }
        assert!(series.max_abs() > 1e3, "and it does blow up");
    }
}
