//! # nexus-climate: the coupled ocean/atmosphere proxy application
//!
//! A stand-in for the Millenia coupled climate model of §4 of the paper
//! (PCCM atmosphere + Wisconsin ocean), preserving the properties the
//! multimethod study depends on:
//!
//! * two concurrently executing models with **frequent internal
//!   communication** (per-step halo exchange on a ring of column slabs);
//! * **infrequent inter-model communication** (a coupling exchange every
//!   two atmosphere steps: fluxes one way, SST back);
//! * the two models placed in **different partitions**, so internal
//!   traffic can use the fast partition-scoped method while coupling
//!   traffic needs TCP.
//!
//! Three executions of the same model:
//!
//! * [`coupled::serial_coupled`] — serial ground truth;
//! * [`driver::run_distributed`] — over `nexus-mpi` on the real runtime
//!   (tests assert bit-for-bit agreement with the serial reference);
//! * [`sim::run_table1`] — the communication skeleton on the simulated
//!   SP2, regenerating Table 1.

#![warn(missing_docs)]

pub mod coupled;
pub mod decomp;
pub mod diag;
pub mod driver;
pub mod grid;
pub mod sim;

pub use coupled::{serial_coupled, CoupledConfig};
pub use driver::{run_distributed, RunConfig, RunResult};
pub use sim::{run_table1, Table1Config, Table1Row, Table1Variant};
