//! Column-slab domain decomposition.

/// Owned-column range of `rank` when `width` columns are split over
/// `ranks` slabs: the first `width % ranks` slabs get one extra column.
pub fn slab(width: usize, ranks: usize, rank: usize) -> (usize, usize) {
    assert!(ranks > 0 && rank < ranks);
    let base = width / ranks;
    let extra = width % ranks;
    let w = base + usize::from(rank < extra);
    let offset = rank * base + rank.min(extra);
    (offset, w)
}

/// Ring neighbours of `rank` (periodic x decomposition).
pub fn ring_neighbors(ranks: usize, rank: usize) -> (usize, usize) {
    let left = (rank + ranks - 1) % ranks;
    let right = (rank + 1) % ranks;
    (left, right)
}

/// Maps an atmosphere rank to the ocean rank owning the same columns, when
/// the ocean has `ocean_ranks` slabs and the atmosphere `atm_ranks`, with
/// `atm_ranks` a multiple of `ocean_ranks` (the paper's 16 / 8 layout).
pub fn ocean_partner(atm_ranks: usize, ocean_ranks: usize, atm_rank: usize) -> usize {
    assert!(atm_ranks.is_multiple_of(ocean_ranks));
    atm_rank / (atm_ranks / ocean_ranks)
}

/// The atmosphere ranks whose columns ocean rank `ocean_rank` owns.
pub fn atm_partners(atm_ranks: usize, ocean_ranks: usize, ocean_rank: usize) -> Vec<usize> {
    let k = atm_ranks / ocean_ranks;
    (ocean_rank * k..(ocean_rank + 1) * k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_cover_domain_exactly() {
        for width in [16usize, 17, 31, 128] {
            for ranks in [1usize, 2, 3, 8, 16] {
                let mut covered = 0;
                let mut next = 0;
                for r in 0..ranks {
                    let (off, w) = slab(width, ranks, r);
                    assert_eq!(off, next, "contiguous");
                    covered += w;
                    next = off + w;
                }
                assert_eq!(covered, width);
            }
        }
    }

    #[test]
    fn slab_sizes_balanced() {
        for r in 0..5 {
            let (_, w) = slab(17, 5, r);
            assert!(w == 3 || w == 4);
        }
    }

    #[test]
    fn ring_wraps() {
        assert_eq!(ring_neighbors(4, 0), (3, 1));
        assert_eq!(ring_neighbors(4, 3), (2, 0));
        assert_eq!(ring_neighbors(1, 0), (0, 0));
    }

    #[test]
    fn coupling_partner_mapping_is_consistent() {
        for a in 0..16 {
            let o = ocean_partner(16, 8, a);
            assert!(atm_partners(16, 8, o).contains(&a));
        }
        assert_eq!(atm_partners(16, 8, 0), vec![0, 1]);
        assert_eq!(atm_partners(16, 8, 7), vec![14, 15]);
    }

    #[test]
    fn partner_columns_align() {
        // With W divisible by both rank counts, an atm rank's columns are a
        // subset of its ocean partner's columns.
        let w = 128;
        for a in 0..16 {
            let (ao, aw) = slab(w, 16, a);
            let o = ocean_partner(16, 8, a);
            let (oo, ow) = slab(w, 8, o);
            assert!(ao >= oo && ao + aw <= oo + ow);
        }
    }
}
