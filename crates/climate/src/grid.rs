//! Grids and the finite-difference stencil kernel shared by both model
//! components.
//!
//! Both the atmosphere and the ocean are 2-D fields on an `h × W` grid,
//! periodic in the x (column) direction and with fixed (Dirichlet) top and
//! bottom rows. The domain is decomposed by *columns*: each rank owns a
//! contiguous slab of columns plus one halo column on each side, so every
//! rank has a left and a right neighbour on a ring — the communication
//! pattern whose cost structure the paper's climate study rests on
//! (frequent intra-model halo exchange, rare inter-model coupling).

/// A column-slab of a 2-D field with one halo column on each side.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Number of rows (full height; rows 0 and h-1 are boundary rows).
    pub h: usize,
    /// Number of *interior* (owned) columns.
    pub w: usize,
    /// Global column index of the first owned column.
    pub col_offset: usize,
    /// Row-major data, `h` rows × `w + 2` columns (halo at 0 and w+1).
    data: Vec<f64>,
}

impl Grid {
    /// Creates a slab initialized by `f(global_row, global_col)`.
    pub fn new<F: Fn(usize, usize) -> f64>(h: usize, w: usize, col_offset: usize, f: F) -> Grid {
        let stride = w + 2;
        let mut data = vec![0.0; h * stride];
        for i in 0..h {
            for j in 0..w {
                data[i * stride + j + 1] = f(i, col_offset + j);
            }
        }
        Grid {
            h,
            w,
            col_offset,
            data,
        }
    }

    #[inline]
    fn stride(&self) -> usize {
        self.w + 2
    }

    /// Value at (row, local interior column `j` in `0..w`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.stride() + j + 1]
    }

    /// Sets the value at (row, local interior column).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let s = self.stride();
        self.data[i * s + j + 1] = v;
    }

    #[inline]
    fn raw(&self, i: usize, jj: usize) -> f64 {
        self.data[i * self.stride() + jj]
    }

    /// The owned left edge column (sent to the left neighbour).
    pub fn left_edge(&self) -> Vec<f64> {
        (0..self.h).map(|i| self.get(i, 0)).collect()
    }

    /// The owned right edge column (sent to the right neighbour).
    pub fn right_edge(&self) -> Vec<f64> {
        (0..self.h).map(|i| self.get(i, self.w - 1)).collect()
    }

    /// Installs the left halo column (received from the left neighbour).
    pub fn set_left_halo(&mut self, col: &[f64]) {
        assert_eq!(col.len(), self.h);
        let s = self.stride();
        for (i, &v) in col.iter().enumerate() {
            self.data[i * s] = v;
        }
    }

    /// Installs the right halo column.
    pub fn set_right_halo(&mut self, col: &[f64]) {
        assert_eq!(col.len(), self.h);
        let s = self.stride();
        for (i, &v) in col.iter().enumerate() {
            self.data[i * s + self.w + 1] = v;
        }
    }

    /// One owned row as a vector (for coupling exchange).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.w).map(|j| self.get(i, j)).collect()
    }

    /// The owned values in row-major order (no halos).
    pub fn interior(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.h * self.w);
        for i in 0..self.h {
            for j in 0..self.w {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// Sum of owned interior values (for conservation/checksum tests).
    pub fn checksum(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.h {
            for j in 0..self.w {
                s += self.get(i, j);
            }
        }
        s
    }

    /// Min and max over owned values.
    pub fn min_max(&self) -> (f64, f64) {
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for i in 0..self.h {
            for j in 0..self.w {
                let v = self.get(i, j);
                mn = mn.min(v);
                mx = mx.max(v);
            }
        }
        (mn, mx)
    }
}

/// Physics parameters of a stencil step.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Time step.
    pub dt: f64,
    /// Diffusion coefficient (dt · diff ≤ 0.25 for stability).
    pub diff: f64,
    /// Advection velocity in x.
    pub vx: f64,
    /// Advection velocity in y.
    pub vy: f64,
    /// Relaxation coefficient toward the coupling forcing.
    pub relax: f64,
}

/// Advances `g` by one step, returning the new slab. `forcing`, if given,
/// is `(values_for_owned_columns, row_index)`: the row is relaxed toward
/// the given values with coefficient `params.relax` (the coupling term).
///
/// Halos must be current; boundary rows 0 and h-1 are held fixed.
pub fn step(g: &Grid, params: StencilParams, forcing: Option<(&[f64], usize)>) -> Grid {
    let mut out = g.clone();
    let p = params;
    for i in 1..g.h - 1 {
        for j in 0..g.w {
            let u = g.get(i, j);
            let left = g.raw(i, j); // local column j-1 incl. halo
            let right = g.raw(i, j + 2); // local column j+1 incl. halo
            let up = g.get(i - 1, j);
            let down = g.get(i + 1, j);
            let lap = left + right + up + down - 4.0 * u;
            let dux = (right - left) * 0.5;
            let duy = (down - up) * 0.5;
            let mut v = u + p.dt * (p.diff * lap - p.vx * dux - p.vy * duy);
            if let Some((f, row)) = forcing {
                if row == i {
                    v += p.relax * (f[j] - u);
                }
            }
            out.set(i, j, v);
        }
    }
    out
}

/// Refreshes a single-slab (serial) grid's halos from its own columns,
/// implementing the periodic x boundary.
pub fn wrap_halos(g: &mut Grid) {
    let left = g.left_edge();
    let right = g.right_edge();
    g.set_left_halo(&right);
    g.set_right_halo(&left);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(h: usize, w: usize) -> Grid {
        Grid::new(
            h,
            w,
            0,
            |i, j| {
                if i == h / 2 && j == w / 2 {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    const P: StencilParams = StencilParams {
        dt: 0.1,
        diff: 1.0,
        vx: 0.2,
        vy: 0.1,
        relax: 0.0,
    };

    #[test]
    fn edges_and_halos() {
        let mut g = Grid::new(4, 3, 5, |i, j| (i * 100 + j) as f64);
        assert_eq!(g.left_edge(), vec![5.0, 105.0, 205.0, 305.0]);
        assert_eq!(g.right_edge(), vec![7.0, 107.0, 207.0, 307.0]);
        g.set_left_halo(&[1.0; 4]);
        g.set_right_halo(&[2.0; 4]);
        assert_eq!(g.raw(0, 0), 1.0);
        assert_eq!(g.raw(0, g.w + 1), 2.0);
    }

    #[test]
    fn diffusion_spreads_and_conserves_roughly() {
        let mut g = bump(16, 16);
        let c0 = g.checksum();
        for _ in 0..10 {
            wrap_halos(&mut g);
            g = step(
                &g,
                StencilParams {
                    vx: 0.0,
                    vy: 0.0,
                    ..P
                },
                None,
            );
        }
        // Peak decays, mass approximately conserved in the interior
        // (boundary rows are Dirichlet sinks, so allow small leakage).
        assert!(g.get(8, 8) < 1.0);
        assert!(g.get(8, 8) > 0.0);
        let c1 = g.checksum();
        assert!((c1 - c0).abs() < 0.2 * c0.abs().max(1.0));
    }

    #[test]
    fn max_principle_for_pure_diffusion() {
        let mut g = bump(12, 12);
        for _ in 0..50 {
            wrap_halos(&mut g);
            g = step(
                &g,
                StencilParams {
                    vx: 0.0,
                    vy: 0.0,
                    ..P
                },
                None,
            );
            let (mn, mx) = g.min_max();
            assert!(mn >= -1e-12 && mx <= 1.0 + 1e-12, "mn={mn} mx={mx}");
        }
    }

    #[test]
    fn boundary_rows_stay_fixed() {
        let mut g = Grid::new(8, 8, 0, |i, _| i as f64);
        for _ in 0..5 {
            wrap_halos(&mut g);
            g = step(&g, P, None);
        }
        for j in 0..8 {
            assert_eq!(g.get(0, j), 0.0);
            assert_eq!(g.get(7, j), 7.0);
        }
    }

    #[test]
    fn forcing_relaxes_toward_target() {
        let g = Grid::new(6, 4, 0, |_, _| 0.0);
        let forcing = vec![10.0; 4];
        let stepped = step(
            &g,
            StencilParams {
                relax: 0.5,
                vx: 0.0,
                vy: 0.0,
                diff: 0.0,
                dt: 0.1,
            },
            Some((&forcing, 3)),
        );
        for j in 0..4 {
            assert_eq!(stepped.get(3, j), 5.0, "relaxed halfway");
            assert_eq!(stepped.get(2, j), 0.0, "other rows untouched");
        }
    }

    #[test]
    fn row_extraction() {
        let g = Grid::new(3, 4, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(g.row(1), vec![12.0, 13.0, 14.0, 15.0]);
    }
}
