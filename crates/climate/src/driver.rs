//! Distributed coupled-model driver over nexus-mpi.
//!
//! The paper's configuration: the atmosphere on 16 processors, the ocean
//! on 8, in two SP2 partitions, MPL (here: the `mpl` module) inside each
//! partition and TCP between them, all under MPI — here `nexus-mpi` on the
//! real multithreaded runtime. The driver reproduces the *numerics* of the
//! serial reference bit-for-bit (tests enforce equality), while its
//! *communication structure* mirrors the paper's: per-step halo exchange
//! on a ring within each model, and a coupling exchange across partitions
//! every two atmosphere steps.

use crate::coupled::{
    atm_coupling_row, atm_init, atm_params, ocean_coupling_row, ocean_init, ocean_params,
    CoupledConfig,
};
use crate::decomp::{atm_partners, ocean_partner, ring_neighbors, slab};
use crate::grid::{step, wrap_halos, Grid};
use nexus_mpi::{decode_f64s, encode_f64s, run_world, Comm, WorldLayout};
use nexus_rt::error::Result;
use parking_lot::Mutex;

const TAG_TO_LEFT: u32 = 100;
const TAG_TO_RIGHT: u32 = 101;
const TAG_FLUX: u32 = 110;
const TAG_SST: u32 = 111;

/// Placement and sizing of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Problem dimensions and duration.
    pub coupled: CoupledConfig,
    /// Atmosphere ranks (world ranks `0..n_atm`).
    pub n_atm: usize,
    /// Ocean ranks (world ranks `n_atm..n_atm+n_ocean`).
    pub n_ocean: usize,
    /// Place the two models in different partitions (exercises the
    /// multimethod path: MPL inside, TCP between). When false, everything
    /// shares partition 0 and no sockets are needed.
    pub partitioned: bool,
}

impl RunConfig {
    /// A small test configuration: 4 atmosphere + 2 ocean ranks.
    pub fn small() -> Self {
        RunConfig {
            coupled: CoupledConfig::small(),
            n_atm: 4,
            n_ocean: 2,
            partitioned: false,
        }
    }
}

/// Aggregate results of a distributed run: the final global fields in
/// row-major order (so tests can compare against the serial reference
/// cell-for-cell, bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Final atmosphere field, `h_atm x width`, row-major.
    pub atm_field: Vec<f64>,
    /// Final ocean field, `h_ocean x width`, row-major.
    pub ocean_field: Vec<f64>,
}

impl RunResult {
    /// Sum over the final atmosphere field (row-major order).
    pub fn atm_checksum(&self) -> f64 {
        self.atm_field.iter().sum()
    }

    /// Sum over the final ocean field (row-major order).
    pub fn ocean_checksum(&self) -> f64 {
        self.ocean_field.iter().sum()
    }
}

/// Assembles slab interiors (gathered in model-rank order) into one
/// row-major `h x width` field.
fn assemble(h: usize, width: usize, ranks: usize, parts: &[Vec<u8>]) -> Result<Vec<f64>> {
    let mut field = vec![0.0; h * width];
    for (r, bytes) in parts.iter().enumerate() {
        let (off, w) = slab(width, ranks, r);
        let vals = decode_f64s(bytes)?;
        debug_assert_eq!(vals.len(), h * w);
        for i in 0..h {
            for j in 0..w {
                field[i * width + off + j] = vals[i * w + j];
            }
        }
    }
    Ok(field)
}

/// Exchanges halo columns on the model's ring and installs them.
fn halo_exchange(comm: &Comm, grid: &mut Grid) -> Result<()> {
    let n = comm.size();
    if n == 1 {
        wrap_halos(grid);
        return Ok(());
    }
    let (left, right) = ring_neighbors(n, comm.rank());
    comm.send(left, TAG_TO_LEFT, &encode_f64s(&grid.left_edge()))?;
    comm.send(right, TAG_TO_RIGHT, &encode_f64s(&grid.right_edge()))?;
    // My right halo is my right neighbour's left edge, and vice versa.
    let (_, _, from_right) = comm.recv(Some(right), Some(TAG_TO_LEFT))?;
    let (_, _, from_left) = comm.recv(Some(left), Some(TAG_TO_RIGHT))?;
    grid.set_right_halo(&decode_f64s(&from_right)?);
    grid.set_left_halo(&decode_f64s(&from_left)?);
    Ok(())
}

fn atm_rank_main(cfg: &RunConfig, world: &Comm, model: &Comm) -> Result<Grid> {
    let c = cfg.coupled;
    let (off, w) = slab(c.width, cfg.n_atm, model.rank());
    let mut grid = Grid::new(c.h_atm, w, off, atm_init);
    let a_row = atm_coupling_row(c.h_atm);
    let partner = cfg.n_atm + ocean_partner(cfg.n_atm, cfg.n_ocean, model.rank());
    // Initial SST for my columns comes from the ocean's initial condition
    // (both sides compute it analytically; no message needed).
    let mut sst: Vec<f64> = (0..w)
        .map(|j| ocean_init(ocean_coupling_row(), off + j))
        .collect();
    for _ in 0..c.periods {
        for _ in 0..2 {
            halo_exchange(model, &mut grid)?;
            grid = step(&grid, atm_params(), Some((&sst, a_row)));
        }
        // Couple: flux out, SST back (across partitions when so placed).
        world.send(partner, TAG_FLUX, &encode_f64s(&grid.row(a_row)))?;
        let (_, _, sst_bytes) = world.recv(Some(partner), Some(TAG_SST))?;
        sst = decode_f64s(&sst_bytes)?;
    }
    Ok(grid)
}

fn ocean_rank_main(cfg: &RunConfig, world: &Comm, model: &Comm) -> Result<Grid> {
    let c = cfg.coupled;
    let (off, w) = slab(c.width, cfg.n_ocean, model.rank());
    let mut grid = Grid::new(c.h_ocean, w, off, ocean_init);
    let o_row = ocean_coupling_row();
    let partners = atm_partners(cfg.n_atm, cfg.n_ocean, model.rank());
    for _ in 0..c.periods {
        // Assemble the flux field for my columns from my atmosphere
        // partners (their slabs tile mine when widths divide evenly; the
        // general case is handled by offset arithmetic).
        let mut flux = vec![0.0; w];
        for &a in &partners {
            let (a_off, a_w) = slab(c.width, cfg.n_atm, a);
            let (_, _, bytes) = world.recv(Some(a), Some(TAG_FLUX))?;
            let vals = decode_f64s(&bytes)?;
            debug_assert_eq!(vals.len(), a_w);
            for (k, v) in vals.into_iter().enumerate() {
                let g = a_off + k;
                if g >= off && g < off + w {
                    flux[g - off] = v;
                }
            }
        }
        halo_exchange(model, &mut grid)?;
        grid = step(&grid, ocean_params(), Some((&flux, o_row)));
        // Send each partner the SST for its columns.
        let sst = grid.row(o_row);
        for &a in &partners {
            let (a_off, a_w) = slab(c.width, cfg.n_atm, a);
            let seg: Vec<f64> = (0..a_w).map(|k| sst[a_off + k - off]).collect();
            world.send(a, TAG_SST, &encode_f64s(&seg))?;
        }
    }
    Ok(grid)
}

/// Runs the coupled model distributed over `n_atm + n_ocean` rank threads
/// and returns the global checksums (identical to the serial reference's).
pub fn run_distributed(cfg: RunConfig) -> Result<RunResult> {
    assert!(
        cfg.n_atm.is_multiple_of(cfg.n_ocean),
        "paper layout: 16/8, tests 4/2"
    );
    assert!(
        cfg.coupled.width.is_multiple_of(cfg.n_atm)
            && cfg.coupled.width.is_multiple_of(cfg.n_ocean),
        "widths must tile so coupling segments align"
    );
    let n = cfg.n_atm + cfg.n_ocean;
    let layout = if cfg.partitioned {
        WorldLayout::partitioned((0..n).map(|r| if r < cfg.n_atm { 1 } else { 2 }).collect())
    } else {
        WorldLayout::uniform(n)
    };
    let result = Mutex::new(None);
    run_world(&layout, |p| {
        let world = p.world();
        let is_atm = p.rank() < cfg.n_atm;
        let model = world
            .split(u32::from(is_atm), p.rank() as i64)
            .expect("split into model communicators");
        let local = if is_atm {
            atm_rank_main(&cfg, &world, &model).expect("atmosphere rank")
        } else {
            ocean_rank_main(&cfg, &world, &model).expect("ocean rank")
        };
        // Gather slabs at the model root, assemble the global field, and
        // report it to world rank 0.
        let gathered = model
            .gather(0, &encode_f64s(&local.interior()))
            .expect("field gather");
        if let Some(parts) = gathered {
            let (h, ranks) = if is_atm {
                (cfg.coupled.h_atm, cfg.n_atm)
            } else {
                (cfg.coupled.h_ocean, cfg.n_ocean)
            };
            let field = assemble(h, cfg.coupled.width, ranks, &parts).expect("assemble");
            world
                .send(0, 120 + u32::from(is_atm), &encode_f64s(&field))
                .expect("report to world root");
        }
        if p.rank() == 0 {
            let (_, _, a) = world.recv(None, Some(121)).expect("atm field");
            let (_, _, o) = world.recv(None, Some(120)).expect("ocean field");
            *result.lock() = Some(RunResult {
                atm_field: decode_f64s(&a).unwrap(),
                ocean_field: decode_f64s(&o).unwrap(),
            });
        }
        world.barrier().expect("final barrier");
    })?;
    Ok(result.into_inner().expect("rank 0 stored the result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupled::serial_coupled;

    fn serial_result(c: CoupledConfig) -> RunResult {
        let (a, o) = serial_coupled(c);
        RunResult {
            atm_field: a.interior(),
            ocean_field: o.interior(),
        }
    }

    #[test]
    fn distributed_matches_serial_exactly_4_plus_2() {
        let cfg = RunConfig::small();
        let got = run_distributed(cfg).unwrap();
        let want = serial_result(cfg.coupled);
        assert_eq!(got, want, "bit-for-bit agreement with the serial model");
    }

    #[test]
    fn distributed_matches_serial_with_partitions_and_sockets() {
        let cfg = RunConfig {
            partitioned: true,
            ..RunConfig::small()
        };
        let got = run_distributed(cfg).unwrap();
        assert_eq!(got, serial_result(cfg.coupled));
    }

    #[test]
    fn distributed_matches_serial_8_plus_4() {
        let cfg = RunConfig {
            coupled: CoupledConfig {
                h_atm: 20,
                h_ocean: 10,
                width: 40,
                periods: 3,
            },
            n_atm: 8,
            n_ocean: 4,
            partitioned: false,
        };
        let got = run_distributed(cfg).unwrap();
        assert_eq!(got, serial_result(cfg.coupled));
    }

    #[test]
    fn single_rank_per_model_also_matches() {
        let cfg = RunConfig {
            coupled: CoupledConfig {
                h_atm: 16,
                h_ocean: 8,
                width: 16,
                periods: 5,
            },
            n_atm: 1,
            n_ocean: 1,
            partitioned: false,
        };
        let got = run_distributed(cfg).unwrap();
        assert_eq!(got, serial_result(cfg.coupled));
    }
}

#[cfg(test)]
mod comm_pinning_tests {
    use super::*;
    use crate::coupled::serial_coupled;
    use nexus_rt::descriptor::MethodId;

    /// The paper's §2.2 pattern in application context: pin a *communicator*
    /// to a method. Here the whole world is one partition, so MPL applies
    /// everywhere; pinning the model communicators to MPL must leave the
    /// numerics untouched.
    #[test]
    fn run_with_mpl_pinned_model_comms_matches_serial() {
        let cfg = RunConfig {
            coupled: CoupledConfig {
                h_atm: 12,
                h_ocean: 8,
                width: 16,
                periods: 2,
            },
            n_atm: 4,
            n_ocean: 2,
            partitioned: false,
        };
        let n = cfg.n_atm + cfg.n_ocean;
        let result = Mutex::new(None);
        nexus_mpi::run_world(&nexus_mpi::WorldLayout::uniform(n), |p| {
            let world = p.world();
            let is_atm = p.rank() < cfg.n_atm;
            let model = world.split(u32::from(is_atm), p.rank() as i64).unwrap();
            model.set_method(MethodId::MPL);
            let local = if is_atm {
                atm_rank_main(&cfg, &world, &model).unwrap()
            } else {
                ocean_rank_main(&cfg, &world, &model).unwrap()
            };
            let gathered = model.gather(0, &encode_f64s(&local.interior())).unwrap();
            if let Some(parts) = gathered {
                let (h, ranks) = if is_atm {
                    (cfg.coupled.h_atm, cfg.n_atm)
                } else {
                    (cfg.coupled.h_ocean, cfg.n_ocean)
                };
                let field = assemble(h, cfg.coupled.width, ranks, &parts).unwrap();
                world
                    .send(0, 120 + u32::from(is_atm), &encode_f64s(&field))
                    .unwrap();
            }
            if p.rank() == 0 {
                let (_, _, a) = world.recv(None, Some(121)).unwrap();
                let (_, _, o) = world.recv(None, Some(120)).unwrap();
                *result.lock() = Some(RunResult {
                    atm_field: decode_f64s(&a).unwrap(),
                    ocean_field: decode_f64s(&o).unwrap(),
                });
            }
            // Enquiry: the halo links actually used MPL.
            if model.size() > 1 {
                let used: Vec<_> = model.methods_in_use().into_iter().flatten().collect();
                assert!(used.iter().all(|&m| m == MethodId::MPL));
            }
            world.barrier().unwrap();
        })
        .unwrap();
        let got = result.into_inner().unwrap();
        let (a, o) = serial_coupled(cfg.coupled);
        assert_eq!(got.atm_field, a.interior());
        assert_eq!(got.ocean_field, o.interior());
    }
}

#[cfg(test)]
mod minimal_tests {
    use super::*;
    use crate::coupled::serial_coupled;

    #[test]
    fn two_atm_one_ocean_minimal_case() {
        let cfg = RunConfig {
            coupled: CoupledConfig {
                h_atm: 6,
                h_ocean: 4,
                width: 4,
                periods: 1,
            },
            n_atm: 2,
            n_ocean: 1,
            partitioned: false,
        };
        let got = run_distributed(cfg).unwrap();
        let (a, o) = serial_coupled(cfg.coupled);
        assert_eq!(got.atm_field, a.interior());
        assert_eq!(got.ocean_field, o.interior());
    }
}
