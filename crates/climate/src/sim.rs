//! Table 1 on the simulated testbed.
//!
//! This module expresses the coupled model's *communication structure* as
//! a simnet workload: 16 atmosphere nodes in partition 1, 8 ocean nodes in
//! partition 2; per atmosphere step a compute block (during which the
//! application performs runtime calls, each running one poll pass) and a
//! ring halo exchange over MPL; every two atmosphere steps a coupling
//! exchange with the ocean over TCP. The knobs of Table 1 map directly:
//!
//! | paper row | here |
//! |-----------|------|
//! | Selective TCP | programs toggle `skip_poll(tcp)` around the coupling section |
//! | Forwarding | atm 0 / ocean 0 are forwarders; everyone else stops polling TCP; the forwarders keep paying the select on every runtime call |
//! | skip poll *k* | `skip_poll(tcp) = k` on every node |
//! | (text) TCP-everywhere | a network model with only TCP, halos included |
//!
//! Compute-block sizes are calibrated so the *selective* variant lands at
//! the paper's ≈105 s/step on 24 processors; everything else follows from
//! the poll-cost model.

use nexus_rt::descriptor::MethodId;
use nexus_simnet::engine::{NodeApi, NodeConfig, NodeProgram, Sim, SimMsg};
use nexus_simnet::model::NetworkModel;
use nexus_simnet::{calib, SimTime};
use std::any::Any;
use std::collections::HashMap;

/// Atmosphere compute per step (calibrated; see module docs).
pub const C_ATM_NS: u64 = 104_150_000_000;
/// Ocean compute per coupling period.
pub const C_OCE_NS: u64 = 100_000_000_000;
/// Runtime calls (poll passes) per atmosphere step — the paper's Nexus
/// operations during a 100 s step; at select = 100 µs this makes the
/// skip_poll-1 penalty ≈ 4 s/step, matching Table 1 rows 1 vs 3.
pub const OPS_ATM: u64 = 40_000;
/// Runtime calls per ocean period.
pub const OPS_OCE: u64 = 20_000;
/// Halo column volume per exchange message.
pub const HALO_BYTES: u64 = 256 * 1024;
/// Coupling field volume per atmosphere rank.
pub const COUPLE_BYTES: u64 = 512 * 1024;

const TAG_HALO: u32 = 1;
const TAG_FLUX: u32 = 2;
const TAG_SST: u32 = 3;

/// A very large skip value: "do not poll this method" (but not u64::MAX,
/// which the engine reserves for forwarding-disabled sources).
const SKIP_OFF: u64 = 1 << 40;

/// The Table 1 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Variant {
    /// TCP polling enabled only inside the coupling section (row 1).
    SelectiveTcp,
    /// Forwarding nodes for both partitions (row 2).
    Forwarding,
    /// Uniform skip_poll value on every node (rows 3-7).
    SkipPoll(u64),
    /// No multimethod support: TCP for everything, everywhere (§4 text).
    TcpOnly,
}

/// Scale of the Table 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Atmosphere nodes (paper: 16).
    pub n_atm: usize,
    /// Ocean nodes (paper: 8).
    pub n_ocean: usize,
    /// Atmosphere steps to simulate (must be even; 2 steps = 1 period).
    pub steps: u64,
    /// Forwarder service time for the Forwarding variant (mean delay until
    /// a busy forwarder's poll loop notices foreign traffic).
    pub forwarder_service_ns: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            n_atm: 16,
            n_ocean: 8,
            steps: 4,
            forwarder_service_ns: 2_000_000,
        }
    }
}

/// Result row.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// The variant measured.
    pub variant: Table1Variant,
    /// Seconds per atmosphere timestep (the paper's Table 1 metric).
    pub secs_per_step: f64,
}

struct AtmProg {
    left: usize,
    right: usize,
    partner: usize,
    steps: u64,
    step: u64,
    selective: bool,
    halo_got: HashMap<u64, u32>,
    waiting_sst: bool,
    end: Option<SimTime>,
}

impl AtmProg {
    fn begin_step(&mut self, api: &mut NodeApi<'_>) {
        api.compute_polled(C_ATM_NS, OPS_ATM);
        api.send_info(self.left, HALO_BYTES, TAG_HALO, self.step);
        api.send_info(self.right, HALO_BYTES, TAG_HALO, self.step);
    }

    fn after_halos(&mut self, api: &mut NodeApi<'_>) {
        if self.step % 2 == 1 {
            // End of a coupling period: exchange with the ocean.
            if self.selective {
                api.set_skip_poll(MethodId::TCP, 1);
            }
            api.send_info(self.partner, COUPLE_BYTES, TAG_FLUX, self.step / 2);
            self.waiting_sst = true;
        } else {
            self.advance(api);
        }
    }

    fn advance(&mut self, api: &mut NodeApi<'_>) {
        self.step += 1;
        if self.step >= self.steps {
            self.end = Some(api.now());
            api.finish();
            return;
        }
        self.begin_step(api);
        // Both halos for the new step may already have been dispatched to
        // us while we were finishing the previous one; without this check
        // no further message would trigger progress. (The queued compute
        // still executes first — actions run in order.)
        if self.halo_got.get(&self.step).copied().unwrap_or(0) >= 2 {
            self.halo_got.remove(&self.step);
            self.after_halos(api);
        }
    }
}

impl NodeProgram for AtmProg {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        if self.selective {
            api.set_skip_poll(MethodId::TCP, SKIP_OFF);
        }
        self.begin_step(api);
    }

    fn on_message(&mut self, api: &mut NodeApi<'_>, msg: &SimMsg) {
        match msg.tag {
            TAG_HALO => {
                let c = self.halo_got.entry(msg.info).or_insert(0);
                *c += 1;
                if msg.info == self.step && self.halo_got[&self.step] >= 2 {
                    self.halo_got.remove(&self.step);
                    self.after_halos(api);
                }
            }
            TAG_SST if self.waiting_sst => {
                self.waiting_sst = false;
                if self.selective {
                    api.set_skip_poll(MethodId::TCP, SKIP_OFF);
                }
                self.advance(api);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct OceanProg {
    left: usize,
    right: usize,
    partners: Vec<usize>,
    periods: u64,
    period: u64,
    selective: bool,
    halo_got: HashMap<u64, u32>,
    flux_got: HashMap<u64, Vec<usize>>,
}

impl OceanProg {
    fn begin_period(&mut self, api: &mut NodeApi<'_>) {
        if self.selective {
            api.set_skip_poll(MethodId::TCP, SKIP_OFF);
        }
        api.compute_polled(C_OCE_NS, OPS_OCE);
        api.send_info(self.left, HALO_BYTES, TAG_HALO, self.period);
        api.send_info(self.right, HALO_BYTES, TAG_HALO, self.period);
        if self.selective {
            // Entering the coupling section: the ocean now waits for flux.
            api.set_skip_poll(MethodId::TCP, 1);
        }
    }

    fn maybe_reply(&mut self, api: &mut NodeApi<'_>) {
        let halos_done = self.halo_got.get(&self.period).copied().unwrap_or(0) >= 2;
        let flux_done = self
            .flux_got
            .get(&self.period)
            .is_some_and(|v| v.len() >= self.partners.len());
        if !(halos_done && flux_done) {
            return;
        }
        self.halo_got.remove(&self.period);
        let senders = self.flux_got.remove(&self.period).unwrap();
        for a in senders {
            api.send_info(a, COUPLE_BYTES, TAG_SST, self.period);
        }
        self.period += 1;
        if self.period >= self.periods {
            api.finish();
        } else {
            self.begin_period(api);
            // Inputs for the new period may already be buffered.
            self.maybe_reply(api);
        }
    }
}

impl NodeProgram for OceanProg {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.begin_period(api);
    }

    fn on_message(&mut self, api: &mut NodeApi<'_>, msg: &SimMsg) {
        match msg.tag {
            TAG_HALO => {
                *self.halo_got.entry(msg.info).or_insert(0) += 1;
            }
            TAG_FLUX => {
                self.flux_got.entry(msg.info).or_default().push(msg.from);
            }
            _ => {}
        }
        self.maybe_reply(api);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn ring(base: usize, n: usize, i: usize) -> (usize, usize) {
    (base + (i + n - 1) % n, base + (i + 1) % n)
}

/// Runs one Table 1 variant and reports seconds per atmosphere timestep.
pub fn run_table1(variant: Table1Variant, cfg: Table1Config) -> Table1Row {
    assert!(
        cfg.steps.is_multiple_of(2),
        "steps must be whole coupling periods"
    );
    assert!(cfg.n_atm.is_multiple_of(cfg.n_ocean));
    let net: NetworkModel = match variant {
        Table1Variant::TcpOnly => {
            let mut n = NetworkModel::new();
            n.add(calib::tcp_model());
            n
        }
        _ => calib::sp2_network(),
    };
    let mut sim = Sim::new(net);
    let k = cfg.n_atm / cfg.n_ocean;
    let selective = variant == Table1Variant::SelectiveTcp;
    // Atmosphere nodes: indices 0..n_atm, partition 1.
    for i in 0..cfg.n_atm {
        let (left, right) = ring(0, cfg.n_atm, i);
        sim.add_node(
            NodeConfig {
                partition: 1,
                raw_mode: false,
            },
            Box::new(AtmProg {
                left,
                right,
                partner: cfg.n_atm + i / k,
                steps: cfg.steps,
                step: 0,
                selective,
                halo_got: HashMap::new(),
                waiting_sst: false,
                end: None,
            }),
        );
    }
    // Ocean nodes: indices n_atm.., partition 2.
    for i in 0..cfg.n_ocean {
        let (left, right) = ring(cfg.n_atm, cfg.n_ocean, i);
        sim.add_node(
            NodeConfig {
                partition: 2,
                raw_mode: false,
            },
            Box::new(OceanProg {
                left,
                right,
                partners: (0..k).map(|j| i * k + j).collect(),
                periods: cfg.steps / 2,
                period: 0,
                selective,
                halo_got: HashMap::new(),
                flux_got: HashMap::new(),
            }),
        );
    }
    match variant {
        Table1Variant::SkipPoll(kk) => sim.set_skip_poll_all(MethodId::TCP, kk),
        Table1Variant::Forwarding => {
            sim.set_forwarder_service_ns(cfg.forwarder_service_ns);
            sim.set_forwarder(1, 0);
            sim.set_forwarder(2, cfg.n_atm);
        }
        Table1Variant::SelectiveTcp | Table1Variant::TcpOnly => {}
    }
    sim.run(SimTime::from_secs(1_000_000));
    // Seconds per step: latest atmosphere completion over the step count.
    let mut latest = SimTime::ZERO;
    for i in 0..cfg.n_atm {
        let p = sim
            .program(i)
            .as_any()
            .downcast_ref::<AtmProg>()
            .expect("atm program");
        let end = p.end.expect("atmosphere node completed its steps");
        if end > latest {
            latest = end;
        }
    }
    Table1Row {
        variant,
        secs_per_step: latest.as_secs_f64() / cfg.steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(v: Table1Variant) -> f64 {
        run_table1(v, Table1Config::default()).secs_per_step
    }

    #[test]
    fn selective_tcp_lands_near_paper_value() {
        let s = run(Table1Variant::SelectiveTcp);
        assert!(
            (103.0..107.0).contains(&s),
            "selective TCP ≈ 104.9 s/step, got {s:.1}"
        );
    }

    #[test]
    fn skip_poll_1_pays_about_four_seconds_of_selects() {
        let best = run(Table1Variant::SelectiveTcp);
        let s1 = run(Table1Variant::SkipPoll(1));
        let delta = s1 - best;
        assert!(
            (2.5..6.0).contains(&delta),
            "paper: 109.1 vs 104.9 (+4.2 s); got +{delta:.2}"
        );
    }

    #[test]
    fn skip_poll_sweep_falls_then_rises() {
        let s1 = run(Table1Variant::SkipPoll(1));
        let s100 = run(Table1Variant::SkipPoll(100));
        let s12000 = run(Table1Variant::SkipPoll(12_000));
        let s200000 = run(Table1Variant::SkipPoll(200_000));
        assert!(s100 < s1, "skip 100 beats skip 1: {s100:.2} vs {s1:.2}");
        assert!(
            s12000 < s1,
            "skip 12000 beats skip 1: {s12000:.2} vs {s1:.2}"
        );
        assert!(
            s200000 > s12000,
            "extreme skip degrades again: {s200000:.2} vs {s12000:.2}"
        );
    }

    #[test]
    fn tuned_skip_poll_is_within_one_percent_of_selective() {
        let best = run(Table1Variant::SelectiveTcp);
        let tuned = run(Table1Variant::SkipPoll(12_000));
        assert!(
            (tuned - best) / best < 0.01,
            "paper: 105.0 vs 104.9 (+0.1%); got {best:.2} vs {tuned:.2}"
        );
    }

    #[test]
    fn forwarding_is_comparable_to_skip_poll_1() {
        // Paper: forwarding 109.3 ≈ skip_poll(1) 109.1 — the forwarder
        // keeps paying the select on every runtime call and the models
        // synchronize on it.
        let fwd = run(Table1Variant::Forwarding);
        let s1 = run(Table1Variant::SkipPoll(1));
        let ratio = fwd / s1;
        assert!(
            (0.93..1.07).contains(&ratio),
            "forwarding {fwd:.2} vs skip1 {s1:.2}"
        );
    }

    #[test]
    fn forwarding_loses_to_tuned_polling() {
        let fwd = run(Table1Variant::Forwarding);
        let tuned = run(Table1Variant::SkipPoll(12_000));
        assert!(
            fwd > tuned + 1.0,
            "polling beats the forwarder: {fwd:.2} vs {tuned:.2}"
        );
    }

    #[test]
    fn tcp_everywhere_is_clearly_worst() {
        let tcp = run(Table1Variant::TcpOnly);
        let best = run(Table1Variant::SelectiveTcp);
        assert!(
            tcp > best + 3.0,
            "TCP-only must lose clearly: {tcp:.2} vs {best:.2}"
        );
    }

    #[test]
    fn forwarding_degrades_with_forwarder_service_time() {
        // The "additional overhead not found in the polling implementation"
        // (§4): the slower the forwarder services foreign traffic, the
        // worse the coupling path gets.
        let fast = run_table1(
            Table1Variant::Forwarding,
            Table1Config {
                forwarder_service_ns: 100_000, // 0.1 ms
                ..Table1Config::default()
            },
        )
        .secs_per_step;
        let slow = run_table1(
            Table1Variant::Forwarding,
            Table1Config {
                forwarder_service_ns: 500_000_000, // 0.5 s per hop
                ..Table1Config::default()
            },
        )
        .secs_per_step;
        // One forwarder hop per coupling period ends up on the critical
        // path (the other overlaps the ocean's idle slack), so 0.5 s of
        // service costs ~0.25 s per atmosphere step.
        assert!(
            slow > fast + 0.2,
            "service time must show up in the coupling path: {fast:.2} vs {slow:.2}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(Table1Variant::SkipPoll(100));
        let b = run(Table1Variant::SkipPoll(100));
        assert_eq!(a, b);
    }
}
