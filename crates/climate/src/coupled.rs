//! The coupled model: configuration and the serial reference
//! implementation.
//!
//! The Millenia stand-in couples a large "atmosphere" (advection-diffusion)
//! to a smaller "ocean" (diffusion-dominated) on a shared periodic width.
//! Every coupling period = **two atmosphere steps and one ocean step**,
//! after which the models exchange surface fields, exactly like the
//! paper's description ("every two atmosphere steps, the models exchange
//! information such as sea surface temperature and various fluxes"):
//!
//! 1. the atmosphere runs 2 steps, its bottom interior row relaxed toward
//!    the current SST field;
//! 2. the atmosphere's bottom interior row becomes the *flux* field, sent
//!    to the ocean;
//! 3. the ocean runs 1 step (double dt), its top interior row relaxed
//!    toward the flux;
//! 4. the ocean's top interior row becomes the new *SST*, sent back.
//!
//! The serial implementation below is the ground truth the distributed
//! driver must match exactly (bit-for-bit: same per-cell arithmetic, halos
//! carry exact values).

use crate::grid::{step, wrap_halos, Grid, StencilParams};

/// Problem dimensions and duration.
#[derive(Debug, Clone, Copy)]
pub struct CoupledConfig {
    /// Atmosphere rows.
    pub h_atm: usize,
    /// Ocean rows.
    pub h_ocean: usize,
    /// Shared width (periodic).
    pub width: usize,
    /// Number of coupling periods (2 atmosphere steps each).
    pub periods: usize,
}

impl CoupledConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        CoupledConfig {
            h_atm: 24,
            h_ocean: 12,
            width: 32,
            periods: 4,
        }
    }
}

/// Atmosphere physics (advective, fast).
pub fn atm_params() -> StencilParams {
    StencilParams {
        dt: 0.1,
        diff: 0.5,
        vx: 0.3,
        vy: 0.1,
        relax: 0.05,
    }
}

/// Ocean physics (diffusive, slow, double time step).
pub fn ocean_params() -> StencilParams {
    StencilParams {
        dt: 0.2,
        diff: 0.3,
        vx: 0.05,
        vy: 0.0,
        relax: 0.1,
    }
}

/// Deterministic analytic initial condition for the atmosphere.
pub fn atm_init(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 97) as f64 / 97.0
}

/// Deterministic analytic initial condition for the ocean.
pub fn ocean_init(i: usize, j: usize) -> f64 {
    ((i * 13 + j * 29) % 83) as f64 / 83.0
}

/// Row indices used for coupling.
pub fn atm_coupling_row(h_atm: usize) -> usize {
    h_atm - 2
}

/// See [`atm_coupling_row`].
pub fn ocean_coupling_row() -> usize {
    1
}

/// Runs the coupled model serially; returns (atmosphere, ocean) final
/// states as full-width grids.
pub fn serial_coupled(cfg: CoupledConfig) -> (Grid, Grid) {
    let mut atm = Grid::new(cfg.h_atm, cfg.width, 0, atm_init);
    let mut ocean = Grid::new(cfg.h_ocean, cfg.width, 0, ocean_init);
    let a_row = atm_coupling_row(cfg.h_atm);
    let o_row = ocean_coupling_row();
    let mut sst = ocean.row(o_row);
    for _ in 0..cfg.periods {
        for _ in 0..2 {
            wrap_halos(&mut atm);
            atm = step(&atm, atm_params(), Some((&sst, a_row)));
        }
        let flux = atm.row(a_row);
        wrap_halos(&mut ocean);
        ocean = step(&ocean, ocean_params(), Some((&flux, o_row)));
        sst = ocean.row(o_row);
    }
    (atm, ocean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_run_is_deterministic() {
        let (a1, o1) = serial_coupled(CoupledConfig::small());
        let (a2, o2) = serial_coupled(CoupledConfig::small());
        assert_eq!(a1, a2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn fields_stay_bounded() {
        let (a, o) = serial_coupled(CoupledConfig {
            periods: 50,
            ..CoupledConfig::small()
        });
        let (amn, amx) = a.min_max();
        let (omn, omx) = o.min_max();
        // Initial data is in [0,1]; coupling is a relaxation, so fields
        // remain bounded (loose sanity bound).
        assert!(amn > -1.0 && amx < 2.0, "atm [{amn},{amx}]");
        assert!(omn > -1.0 && omx < 2.0, "ocean [{omn},{omx}]");
    }

    #[test]
    fn coupling_actually_influences_both_models() {
        let cfg = CoupledConfig::small();
        let (a_coupled, o_coupled) = serial_coupled(cfg);
        // Uncoupled run: relax = 0 on both.
        let mut atm = Grid::new(cfg.h_atm, cfg.width, 0, atm_init);
        let mut ocean = Grid::new(cfg.h_ocean, cfg.width, 0, ocean_init);
        let mut ap = atm_params();
        ap.relax = 0.0;
        let mut op = ocean_params();
        op.relax = 0.0;
        for _ in 0..cfg.periods {
            for _ in 0..2 {
                wrap_halos(&mut atm);
                atm = step(&atm, ap, None);
            }
            wrap_halos(&mut ocean);
            ocean = step(&ocean, op, None);
        }
        assert_ne!(a_coupled, atm, "SST forcing must affect the atmosphere");
        assert_ne!(o_coupled, ocean, "flux forcing must affect the ocean");
    }

    #[test]
    fn zero_periods_returns_initial_state() {
        let cfg = CoupledConfig {
            periods: 0,
            ..CoupledConfig::small()
        };
        let (a, o) = serial_coupled(cfg);
        assert_eq!(a.get(3, 5), atm_init(3, 5));
        assert_eq!(o.get(2, 2), ocean_init(2, 2));
    }
}
