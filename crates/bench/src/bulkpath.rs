//! Eager/rendezvous bulk-path benchmark (`--bin bulkpath`).
//!
//! The Mercury-style bulk protocol (core::bulk) claims that past a
//! per-link cutoff, shipping a small pull handle and letting the
//! receiver fetch the body beats copying it inline — and that over
//! region-mapping methods the fetch is zero-copy. This harness measures
//! the four paths that bracket those claims, sweeping payload size:
//!
//! * **inline** — `Context::rsr_bulk` with the all-eager default: the
//!   body rides the RSR over a copying wire. The baseline whose cost
//!   grows with every inlined byte.
//! * **pull-map** — `rsr_bulk` with cutoff 0 over a region-mapping rail
//!   (shmem-class): a `#bulk` announce, a `#bulk-get`, and an in-place
//!   borrow of the registered region. No per-byte copy anywhere, which
//!   the binary also asserts via the runtime's body-encode counter.
//! * **pull-wire** — the same rendezvous over copying rails (TCP-class):
//!   the region streams back as pipelined chunks striped across every
//!   rail by the pull engine.
//! * **stripe-raw** — plain `Context::rsr` over the same copying rails
//!   with `set_striped`: the raw striped-transfer floor that pull-wire's
//!   control overhead is gated against (within 25 % at 4 MiB).
//!
//! The measured **knees** — the smallest swept payloads where each pull
//! path beats inline — are recorded in the emitted JSON. On this 1-CPU
//! container the mapped pull shows a genuine knee (its constant control
//! cost crosses inline's per-byte copy within a few tens of KiB), while
//! the wire pull typically does not: both protocol sides share one core,
//! so the chunk-and-reassemble copy is never repaid by an in-process
//! "wire" that costs nothing. The analytic model in `nexus-simnet`'s
//! `bulk` module pins the wire knee against the paper's calibrated wire
//! constants instead.

use crate::patterns::CopyWire;
use crate::report;
use crate::rsrpath::Json;
use bytes::Bytes;
use nexus_rt::buffer::Buffer;
use nexus_rt::context::{Context, ContextInfo, Fabric};
use nexus_rt::descriptor::{CommDescriptor, MethodId};
use nexus_rt::error::Result as NexusResult;
use nexus_rt::module::{CommModule, CommObject, CommReceiver};
use nexus_transports::queue::{QueueDescriptor, QueueMedium, QueueObject, QueueReceiver};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stripe cutoff installed for the `stripe-raw` baseline (same value the
/// `patterns` suite uses, so the floors are comparable).
pub const CUTOFF: usize = 2048;

/// Batches per scenario; ns/op is the fastest batch (deterministic work,
/// so the minimum estimates true cost — see `rsrpath`).
const MIN_OF_BATCHES: u32 = 8;

/// The four measured paths, in sweep order.
pub const SCENARIOS: [&str; 4] = ["inline", "pull-map", "pull-wire", "stripe-raw"];

/// Benchmark configuration: iteration counts and the scenario matrix.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed iterations per scenario at the smallest payload (scaled
    /// down as payloads grow).
    pub iters: u32,
    /// Untimed warm-up iterations per scenario.
    pub warmup: u32,
    /// Payload sizes in bytes.
    pub payloads: Vec<usize>,
    /// Rail counts swept for the wire scenarios (`pull-wire` and
    /// `stripe-raw`; `inline` and `pull-map` are single-link paths).
    pub link_counts: Vec<usize>,
}

impl Config {
    /// The full matrix the checked-in numbers use.
    pub fn full() -> Self {
        Config {
            iters: 2_000,
            warmup: 100,
            payloads: vec![1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304],
            link_counts: vec![1, 2, 4],
        }
    }

    /// A fast CI-friendly run over a reduced payload sweep.
    pub fn smoke() -> Self {
        Config {
            iters: 320,
            warmup: 24,
            payloads: vec![4_096, 262_144, 4_194_304],
            link_counts: vec![1, 4],
        }
    }

    /// Iterations for one payload size: large payloads copy megabytes
    /// per op, so they run far fewer timed iterations.
    fn iters_for(&self, payload: usize) -> u32 {
        if payload >= 1 << 20 {
            (self.iters / 40).max(24)
        } else if payload >= 1 << 16 {
            (self.iters / 8).max(40)
        } else {
            self.iters
        }
    }

    /// Rail counts applicable to `scenario`.
    fn links_for(&self, scenario: &str) -> Vec<usize> {
        match scenario {
            "inline" | "pull-map" => vec![1],
            _ => self.link_counts.clone(),
        }
    }
}

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Path name (one of [`SCENARIOS`]).
    pub scenario: String,
    /// Rail count the wire scenarios spread over (1 for the single-link
    /// paths).
    pub links: usize,
    /// Payload bytes per op.
    pub payload: usize,
    /// Nanoseconds per op (send + pull protocol + dispatch).
    pub ns_per_op: f64,
    /// Global-allocator calls per op.
    pub allocs_per_op: f64,
}

impl Scenario {
    fn key(&self) -> (&str, usize, usize) {
        (self.scenario.as_str(), self.links, self.payload)
    }

    /// Cost per payload byte implied by ns/op.
    pub fn ns_per_byte(&self) -> f64 {
        if self.payload == 0 {
            return 0.0;
        }
        self.ns_per_op / self.payload as f64
    }
}

/// A queue-backed rail, either **mapping** (connect returns the raw
/// in-process queue object, `supports_region_map() == true`, so bulk
/// pulls borrow the region in place — the shmem stand-in) or **copying**
/// (wrapped in [`CopyWire`], one memcpy per byte per hop and no region
/// map — the wire stand-in).
struct RailModule {
    method: MethodId,
    rank: u32,
    medium: Arc<QueueMedium>,
    mapping: bool,
}

impl RailModule {
    fn new(i: usize, mapping: bool) -> Self {
        RailModule {
            method: MethodId(0x300 + i as u16),
            rank: 10 + i as u32,
            medium: Arc::new(QueueMedium::new()),
            mapping,
        }
    }
}

impl CommModule for RailModule {
    fn method(&self) -> MethodId {
        self.method
    }

    fn name(&self) -> &'static str {
        "bench-bulk-rail"
    }

    fn cost_rank(&self) -> u32 {
        self.rank
    }

    fn open(&self, ctx: &ContextInfo) -> NexusResult<(CommDescriptor, Box<dyn CommReceiver>)> {
        let desc = QueueDescriptor::encode(self.method, ctx);
        let rx = QueueReceiver::new(Arc::clone(&self.medium), ctx.id);
        Ok((desc, Box::new(rx)))
    }

    fn applicable(&self, _local: &ContextInfo, desc: &CommDescriptor) -> bool {
        desc.method == self.method
    }

    fn connect(
        &self,
        _local: &ContextInfo,
        desc: &CommDescriptor,
    ) -> NexusResult<Arc<dyn CommObject>> {
        let d = QueueDescriptor::decode(desc)?;
        let inner = QueueObject::connect(self.method, &self.medium, d.context)?;
        if self.mapping {
            Ok(inner)
        } else {
            Ok(Arc::new(CopyWire { inner }))
        }
    }

    fn poll_cost_ns(&self) -> u64 {
        100
    }
}

/// Per-scenario fixture: a sender, a receiver draining into a delivery
/// counter, and both contexts pumped together (the pull protocol needs
/// progress on the origin to service `#bulk-get`).
struct Fixture {
    fabric: Fabric,
    tx: Arc<Context>,
    rx: Arc<Context>,
    sp: nexus_rt::startpoint::Startpoint,
    received: Arc<AtomicU64>,
}

impl Fixture {
    fn new(rails: usize, mapping: bool) -> Fixture {
        let fabric = Fabric::new();
        for i in 0..rails {
            fabric
                .registry()
                .register(Arc::new(RailModule::new(i, mapping)));
        }
        let tx = fabric.create_context().expect("create sender");
        let rx = fabric.create_context().expect("create receiver");
        let received = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&received);
        rx.register_handler("bench", move |_| {
            r.fetch_add(1, Ordering::Relaxed);
        });
        let sp = rx
            .startpoint_to(rx.create_endpoint())
            .expect("bind endpoint");
        Fixture {
            fabric,
            tx,
            rx,
            sp,
            received,
        }
    }

    fn drain_to(&self, expected: u64) {
        while self.received.load(Ordering::Relaxed) < expected {
            self.rx.progress().expect("rx progress");
            self.tx.progress().expect("tx progress");
        }
    }
}

/// Runs one (scenario, links, payload) cell and reports min-of-batches
/// ns/op plus mean allocs/op. `alloc_count` reads the process-wide
/// allocation counter (the binary's counting global allocator).
fn run_scenario(
    scenario: &str,
    links: usize,
    payload: usize,
    iters: u32,
    warmup: u32,
    alloc_count: &dyn Fn() -> u64,
) -> Scenario {
    let fx = match scenario {
        // All-eager default: rsr_bulk degenerates to the inline path.
        "inline" => Fixture::new(links, false),
        "pull-map" => {
            let f = Fixture::new(links, true);
            f.tx.set_rendezvous(&f.sp, 0);
            f
        }
        "pull-wire" => {
            let f = Fixture::new(links, false);
            f.tx.set_rendezvous(&f.sp, 0);
            f
        }
        "stripe-raw" => {
            let f = Fixture::new(links, false);
            if links >= 2 {
                f.tx.set_striped(&f.sp, CUTOFF).expect("install stripe");
            }
            f
        }
        other => panic!("unknown scenario {other}"),
    };
    let data = Bytes::from((0..payload).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let mut expected = 0_u64;
    let mut pump = |n: u32| {
        for _ in 0..n {
            if scenario == "stripe-raw" {
                fx.tx
                    .rsr(&fx.sp, "bench", Buffer::from_bytes(data.clone()))
                    .expect("rsr");
            } else {
                fx.tx
                    .rsr_bulk(&fx.sp, "bench", Buffer::from_bytes(data.clone()))
                    .expect("rsr_bulk");
            }
            expected += 1;
            fx.drain_to(expected);
        }
    };
    pump(warmup);
    let per_batch = (iters / MIN_OF_BATCHES).max(1);
    let allocs0 = alloc_count();
    let mut best_ns = f64::INFINITY;
    for _ in 0..MIN_OF_BATCHES {
        let t0 = Instant::now();
        pump(per_batch);
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(per_batch);
        best_ns = best_ns.min(ns);
    }
    let allocs = alloc_count() - allocs0;
    assert_eq!(fx.tx.bulk_regions(), 0, "regions must drain");
    assert_eq!(fx.rx.bulk_pulls_pending(), 0, "pulls must drain");
    fx.fabric.shutdown();
    Scenario {
        scenario: scenario.to_owned(),
        links,
        payload,
        ns_per_op: best_ns,
        allocs_per_op: allocs as f64 / f64::from(MIN_OF_BATCHES * per_batch),
    }
}

/// Runs the whole scenario × links × payload matrix.
pub fn run(cfg: &Config, alloc_count: &dyn Fn() -> u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for scenario in SCENARIOS {
        for links in cfg.links_for(scenario) {
            for &payload in &cfg.payloads {
                out.push(run_scenario(
                    scenario,
                    links,
                    payload,
                    cfg.iters_for(payload),
                    cfg.warmup,
                    alloc_count,
                ));
            }
        }
    }
    out
}

/// The measured rendezvous knee for one pull scenario: the smallest
/// swept payload at which the 1-rail pull is no slower than the inline
/// send. `None` when the pull never catches up inside the sweep — the
/// expected outcome for `pull-wire` on a 1-CPU container, where the
/// chunk-and-reassemble copy can never be won back against an in-process
/// "wire" that costs nothing (the analytic model in nexus-simnet pins
/// that knee against real wire constants instead).
pub fn knee_bytes(rows: &[Scenario], pull: &str) -> Option<usize> {
    let mut knee: Option<usize> = None;
    for p in rows.iter().filter(|r| r.key().0 == pull && r.links == 1) {
        let Some(e) = rows.iter().find(|r| r.key() == ("inline", 1, p.payload)) else {
            continue;
        };
        if p.ns_per_op <= e.ns_per_op {
            knee = Some(knee.map_or(p.payload, |k: usize| k.min(p.payload)));
        }
    }
    knee
}

/// One knee line for `pull`, for the table footer and the JSON note.
fn knee_line(rows: &[Scenario], pull: &str) -> String {
    match knee_bytes(rows, pull) {
        Some(k) => format!("{pull} knee vs inline: {k} B"),
        None => format!("{pull} knee vs inline: beyond the swept payloads"),
    }
}

/// Formats the scenario table.
pub fn format(rows: &[Scenario]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                s.links.to_string(),
                s.payload.to_string(),
                format!("{:.0}", s.ns_per_op),
                format!("{:.3}", s.ns_per_byte()),
                format!("{:.1}", s.allocs_per_op),
            ]
        })
        .collect();
    let knee = format!(
        "measured rendezvous knees (1 rail): {}; {}",
        knee_line(rows, "pull-map"),
        knee_line(rows, "pull-wire")
    );
    format!(
        "eager/rendezvous bulk paths over in-process queue rails\n{}\n{knee}",
        report::table(
            &[
                "scenario",
                "rails",
                "payload B",
                "ns/op",
                "ns/byte",
                "allocs/op"
            ],
            &body
        )
    )
}

/// Serializes scenarios as a JSON array (stable field order).
pub fn results_json(rows: &[Scenario]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"scenario\": \"{}\", \"links\": {}, \"payload\": {}, \"ns_per_op\": {:.1}, \"allocs_per_op\": {:.1}}}",
                s.scenario, s.links, s.payload, s.ns_per_op, s.allocs_per_op
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// The document the `bulkpath` binary writes.
pub fn document_json(rows: &[Scenario]) -> String {
    let note = format!(
        "{}; {} (1-CPU container: both protocol sides share the core, so the in-process wire pull \
         keeps its reassembly copy without the wire savings that repay it)",
        knee_line(rows, "pull-map"),
        knee_line(rows, "pull-wire")
    );
    format!(
        "{{\n  \"schema\": \"nexus-bulk-v1\",\n  \"note\": \"{note}\",\n  \"results\": {}\n}}\n",
        results_json(rows)
    )
}

/// Extracts the scenario array under `key` from a tracked document
/// (parsed with [`crate::rsrpath::parse_json`]).
pub fn scenarios_from(doc: &Json, key: &str) -> Option<Vec<Scenario>> {
    let arr = match doc.get(key)? {
        Json::Arr(a) => a,
        _ => return None,
    };
    let mut out = Vec::new();
    for item in arr {
        let scenario = match item.get("scenario")? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        out.push(Scenario {
            scenario,
            links: item.get("links")?.num()? as usize,
            payload: item.get("payload")?.num()? as usize,
            ns_per_op: item.get("ns_per_op")?.num()?,
            allocs_per_op: item.get("allocs_per_op")?.num()?,
        });
    }
    Some(out)
}

/// Compares `current` against the tracked baseline. Returns one message
/// per regression: ns/op more than `ns_tolerance` above baseline, or
/// allocs/op meaningfully above the pinned budget. Scenarios absent from
/// the baseline are ignored (new rows are not regressions).
pub fn check(current: &[Scenario], baseline: &[Scenario], ns_tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        let ns_limit = base.ns_per_op * (1.0 + ns_tolerance);
        if cur.ns_per_op > ns_limit {
            failures.push(format!(
                "{} links={} payload={}: ns/op {:.0} exceeds baseline {:.0} by more than \
                 {:.0} % (limit {:.0})",
                cur.scenario,
                cur.links,
                cur.payload,
                cur.ns_per_op,
                base.ns_per_op,
                ns_tolerance * 100.0,
                ns_limit
            ));
        }
        let alloc_limit = base.allocs_per_op * 1.25 + 2.0;
        if cur.allocs_per_op > alloc_limit {
            failures.push(format!(
                "{} links={} payload={}: allocs/op {:.1} exceeds baseline {:.1} (limit {:.1})",
                cur.scenario,
                cur.links,
                cur.payload,
                cur.allocs_per_op,
                base.allocs_per_op,
                alloc_limit
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsrpath::parse_json;

    fn s(scenario: &str, links: usize, payload: usize, ns: f64, allocs: f64) -> Scenario {
        Scenario {
            scenario: scenario.to_owned(),
            links,
            payload,
            ns_per_op: ns,
            allocs_per_op: allocs,
        }
    }

    #[test]
    fn smoke_run_covers_every_scenario() {
        let cfg = Config {
            iters: 24,
            warmup: 4,
            payloads: vec![4_096, 65_536],
            link_counts: vec![1, 2],
        };
        let rows = run(&cfg, &|| 0);
        // inline and pull-map run 1 rail only; the wire pair sweep both.
        assert_eq!(rows.len(), 2 * 2 + 2 * 2 * 2);
        assert!(rows.iter().all(|r| r.ns_per_op > 0.0));
        for sc in SCENARIOS {
            assert!(rows.iter().any(|r| r.scenario == sc));
        }
        let t = format(&rows);
        assert!(t.contains("pull-map"));
        assert!(t.contains("rendezvous knee"));
    }

    #[test]
    fn knee_is_the_smallest_winning_pull_payload() {
        let rows = vec![
            s("inline", 1, 4_096, 1_000.0, 0.0),
            s("inline", 1, 65_536, 20_000.0, 0.0),
            s("inline", 1, 262_144, 90_000.0, 0.0),
            s("pull-wire", 1, 4_096, 5_000.0, 0.0),
            s("pull-wire", 1, 65_536, 18_000.0, 0.0),
            s("pull-wire", 1, 262_144, 40_000.0, 0.0),
        ];
        assert_eq!(knee_bytes(&rows, "pull-wire"), Some(65_536));
        // A pull that never wins yields no knee.
        let never = vec![
            s("inline", 1, 4_096, 1_000.0, 0.0),
            s("pull-wire", 1, 4_096, 5_000.0, 0.0),
        ];
        assert_eq!(knee_bytes(&never, "pull-wire"), None);
        assert_eq!(knee_bytes(&never, "pull-map"), None);
    }

    #[test]
    fn json_roundtrip_through_parser() {
        let rows = vec![
            s("pull-map", 1, 4_194_304, 7_000.0, 0.0),
            s("pull-wire", 4, 4_194_304, 9.5e6, 12.0),
        ];
        let doc = document_json(&rows);
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(
            parsed.get("schema"),
            Some(&Json::Str("nexus-bulk-v1".to_owned()))
        );
        let back = scenarios_from(&parsed, "results").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].scenario, "pull-map");
        assert_eq!(back[1].links, 4);
        assert!((back[1].ns_per_op - 9.5e6).abs() < 1e-3);
    }

    #[test]
    fn check_gates_ns_and_allocs_per_scenario() {
        let base = vec![s("pull-wire", 2, 4096, 10_000.0, 4.0)];
        assert!(check(&[s("pull-wire", 2, 4096, 12_000.0, 4.0)], &base, 0.25).is_empty());
        let ns_fail = check(&[s("pull-wire", 2, 4096, 13_000.0, 4.0)], &base, 0.25);
        assert_eq!(ns_fail.len(), 1);
        assert!(ns_fail[0].contains("ns/op"));
        let alloc_fail = check(&[s("pull-wire", 2, 4096, 9_000.0, 30.0)], &base, 0.25);
        assert_eq!(alloc_fail.len(), 1);
        assert!(alloc_fail[0].contains("allocs/op"));
        // Different scenario at the same shape is a different cell.
        assert!(check(&[s("inline", 2, 4096, 9e9, 9e9)], &base, 0.25).is_empty());
    }
}
