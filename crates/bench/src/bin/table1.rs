//! Regenerates Table 1: the coupled climate model under each multimethod
//! communication technique (s per timestep, 24 processors).

use nexus_bench::table1;
use nexus_climate::Table1Config;

fn main() {
    println!("=== Table 1 — coupled climate model, 16 atm + 8 ocean ranks ===\n");
    let rows = table1::run(Table1Config::default());
    println!("{}", table1::format(&rows));
    println!(
        "(paper §4 also reports that TCP-everywhere is an order of magnitude\n\
         worse in total; our model reproduces the ordering and the comm-time\n\
         blow-up — see EXPERIMENTS.md for the discussion of the gap)"
    );
}
