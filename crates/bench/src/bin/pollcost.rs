//! Measures live empty-poll costs per method (the §3.3 probe-cost
//! differential that motivates skip_poll), then the runtime's own
//! trace-layer EWMAs of the same costs, read back through the enquiry
//! API.

use nexus_bench::pollcost;

fn main() {
    println!("=== Probe costs (live) ===\n");
    let rows = pollcost::run(1_000_000, 8);
    print!("{}", pollcost::format(&rows));

    println!("\n=== Probe/send costs as the runtime measured them ===\n");
    let measured = pollcost::measured(200, 5_000);
    print!("{}", pollcost::format_measured(&measured));
}
