//! Measures live empty-poll costs per method (the §3.3 probe-cost
//! differential that motivates skip_poll).

use nexus_bench::pollcost;

fn main() {
    println!("=== Probe costs (live) ===\n");
    let rows = pollcost::run(1_000_000, 8);
    print!("{}", pollcost::format(&rows));
}
