//! Runs every experiment in sequence; its output is what EXPERIMENTS.md
//! records.

use nexus_bench::{fig4, fig6, overhead, pollcost, table1};
use nexus_climate::Table1Config;

fn main() {
    println!("################ Fig. 4 ################\n");
    let small = fig4::run(&fig4::small_sizes(), 1_000);
    println!("{}", fig4::format("left panel: 0-1000 bytes", &small));
    let large = fig4::run(&fig4::large_sizes(), 1_000);
    println!("{}", fig4::format("right panel: wider range", &large));
    print!("{}", fig4::summary(&small));
    print!("{}", fig4::summary(&large));

    println!("\n################ Fig. 6 ################\n");
    let skips = fig6::default_skips();
    let zero = fig6::run(0, 2_000, &skips);
    println!("{}", fig6::format("left panel: 0-byte messages", &zero));
    let ten_kb = fig6::run(10_000, 1_000, &skips);
    println!("{}", fig6::format("right panel: 10 KB messages", &ten_kb));
    print!("{}", fig6::summary(&zero));

    println!("\n################ Table 1 ################\n");
    let rows = table1::run(Table1Config::default());
    println!("{}", table1::format(&rows));

    println!("\n################ Layering overhead ################\n");
    let r = overhead::run(20_000, 0);
    print!("{}", overhead::format(&r));

    println!("\n################ Probe costs ################\n");
    let rows = pollcost::run(500_000, 8);
    print!("{}", pollcost::format(&rows));
}
