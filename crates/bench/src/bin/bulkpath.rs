//! Eager/rendezvous bulk-path benchmark: inline vs zero-copy mapped pull
//! vs chunk-streamed wire pull vs the raw striped floor, with a
//! tracked-baseline regression gate.
//!
//! ```text
//! cargo run --release -p nexus-bench --bin bulkpath              # full matrix
//! cargo run --release -p nexus-bench --bin bulkpath -- --smoke   # CI-sized run
//!     --json PATH      write current results as JSON
//!     --check PATH     compare against tracked BENCH_bulk.json
//!                      ("results" block), exit 1 on ns/op regression
//!     --tolerance PCT  override the regression tolerance (default 25)
//! ```

use nexus_bench::bulkpath::{self, Config};
use nexus_bench::rsrpath::parse_json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global-allocator calls observed so far (alloc + realloc + alloc_zeroed).
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A pass-through allocator that counts allocation calls, so the harness
/// can report allocs/op without instrumenting the runtime itself.
struct CountingAlloc;

// SAFETY: every method delegates to `System`, which satisfies the
// GlobalAlloc contract; the counter update has no effect on the memory
// returned or freed.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwarded verbatim to `System.alloc` under the caller's
    // layout guarantees.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwarded verbatim to `System.dealloc`; `ptr` came from this
    // allocator, which always returns `System` pointers.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwarded verbatim to `System.realloc` under the caller's
    // layout guarantees.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwarded verbatim to `System.alloc_zeroed` under the
    // caller's layout guarantees.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_out: Option<String> = None;
    let mut check_against: Option<String> = None;
    let mut tolerance = 0.25_f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                }));
            }
            "--check" => {
                i += 1;
                check_against = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check needs a path");
                    std::process::exit(2);
                }));
            }
            "--tolerance" => {
                i += 1;
                let pct: f64 = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a percentage");
                    std::process::exit(2);
                });
                tolerance = pct / 100.0;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = if smoke {
        Config::smoke()
    } else {
        Config::full()
    };
    let rows = bulkpath::run(&cfg, &|| ALLOC_CALLS.load(Ordering::Relaxed));
    println!("{}", bulkpath::format(&rows));

    if let Some(path) = json_out {
        let doc = bulkpath::document_json(&rows);
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }

    if let Some(path) = check_against {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(2);
        });
        let doc = parse_json(&text).unwrap_or_else(|e| {
            eprintln!("parsing {path}: {e}");
            std::process::exit(2);
        });
        let baseline = bulkpath::scenarios_from(&doc, "results").unwrap_or_else(|| {
            eprintln!("{path}: no \"results\" scenario block");
            std::process::exit(2);
        });
        let failures = bulkpath::check(&rows, &baseline, tolerance);
        if failures.is_empty() {
            println!(
                "regression check vs {path}: OK ({} scenarios, tolerance {:.0} %)",
                baseline.len(),
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
