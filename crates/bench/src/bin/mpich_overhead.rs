//! Measures the layering overheads of §4 on the real runtime: bare
//! transport vs Nexus RSRs vs mini-MPI, plus the blocking-poller
//! refinement of §3.3.

use nexus_bench::overhead;

fn main() {
    println!("=== Layering overhead (paper: MPICH-on-Nexus ~ +6%) ===\n");
    let r = overhead::run(20_000, 0);
    print!("{}", overhead::format(&r));
    println!("\n=== Blocking poller (§3.3 refinement) over real TCP ===\n");
    let (poll, block) = overhead::blocking_poller_comparison(2_000);
    println!("TCP ping-pong one-way: polled {poll:.1} us, blocking thread {block:.1} us");
}
