//! Regenerates Figure 6: one-way time vs skip_poll for two concurrent
//! ping-pongs (MPL within a partition, TCP between partitions).

use nexus_bench::fig6;

fn main() {
    let skips = fig6::default_skips();
    println!("=== Figure 6 — one-way time vs skip_poll (dual ping-pong) ===\n");
    let zero = fig6::run(0, 2_000, &skips);
    println!("{}", fig6::format("left panel: 0-byte messages", &zero));
    let ten_kb = fig6::run(10_000, 1_000, &skips);
    println!("{}", fig6::format("right panel: 10 KB messages", &ten_kb));
    print!("{}", fig6::summary(&zero));
}
