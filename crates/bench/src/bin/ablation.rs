//! Ablations of individual design choices: startpoint weight, connection
//! sharing, adaptive skip_poll — plus the runtime-measured cost EWMAs the
//! QoS/selection machinery can consult instead of a-priori constants.
//!
//! `--adaptive` runs a reduced smoke version of the adaptive ablation
//! only (suitable for CI): the bursty-mpl skip_poll comparison at small
//! scale plus one adaptive simnet ping-pong, failing loudly if the
//! controller loses messages or never backs off. (mpl is the probe-only
//! fallback tier; socket methods ride the readiness doorbell instead.)

use nexus_bench::{ablation, pollcost};
use nexus_simnet::pingpong::dual_pingpong_adaptive;
use nexus_simnet::SimAdaptive;

fn adaptive_smoke() {
    println!("=== Adaptive skip_poll smoke ===\n");
    let rows = ablation::skip_poll_ablation(2, 10, 500);
    print!(
        "{}",
        nexus_bench::report::table(
            &["configuration", "mpl probes", "delivered", "final skip"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.to_owned(),
                        r.probes.to_string(),
                        r.delivered.to_string(),
                        r.final_skip.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    );
    let fixed1 = &rows[0];
    let adaptive = rows
        .iter()
        .find(|r| r.label.starts_with("adaptive"))
        .unwrap();
    assert_eq!(
        adaptive.delivered, fixed1.delivered,
        "adaptive controller must not lose messages"
    );
    assert!(
        adaptive.final_skip > 1,
        "controller should back off during quiet periods (final skip {})",
        adaptive.final_skip
    );

    let sim = dual_pingpong_adaptive(0, 50, SimAdaptive::default());
    println!("\nsimnet adaptive dual ping-pong (0 B, 50 MPL rounds):");
    println!("  MPL one-way: {}", sim.mpl_one_way);
    if let Some(tcp) = sim.tcp_one_way {
        println!(
            "  TCP one-way: {} over {} roundtrips (final TCP skip {})",
            tcp, sim.tcp_roundtrips, sim.final_tcp_skip
        );
    }
    assert!(sim.tcp_roundtrips > 0, "TCP leg must complete roundtrips");
    println!("\nadaptive smoke OK");
}

fn main() {
    if std::env::args().any(|a| a == "--adaptive") {
        adaptive_smoke();
        return;
    }
    println!("=== Design-choice ablations ===\n");
    let sizes = ablation::startpoint_sizes();
    let conns = ablation::connection_sharing(10);
    let rows = ablation::skip_poll_ablation(5, 50, 5_000);
    print!("{}", ablation::format_report(sizes, (10, conns), &rows));

    println!("\n=== Runtime-measured cost EWMAs ===\n");
    let measured = pollcost::measured(100, 2_000);
    print!("{}", pollcost::format_measured(&measured));
}
