//! Ablations of individual design choices: startpoint weight, connection
//! sharing, adaptive skip_poll — plus the runtime-measured cost EWMAs the
//! QoS/selection machinery can consult instead of a-priori constants.

use nexus_bench::{ablation, pollcost};

fn main() {
    println!("=== Design-choice ablations ===\n");
    let sizes = ablation::startpoint_sizes();
    let conns = ablation::connection_sharing(10);
    let rows = ablation::skip_poll_ablation(5, 50, 5_000);
    print!("{}", ablation::format_report(sizes, (10, conns), &rows));

    println!("\n=== Runtime-measured cost EWMAs ===\n");
    let measured = pollcost::measured(100, 2_000);
    print!("{}", pollcost::format_measured(&measured));
}
