//! Ablations of individual design choices: startpoint weight, connection
//! sharing, adaptive skip_poll.

use nexus_bench::ablation;

fn main() {
    println!("=== Design-choice ablations ===\n");
    let sizes = ablation::startpoint_sizes();
    let conns = ablation::connection_sharing(10);
    let rows = ablation::skip_poll_ablation(5, 50, 5_000);
    print!("{}", ablation::format_report(sizes, (10, conns), &rows));
}
