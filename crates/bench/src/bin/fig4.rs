//! Regenerates Figure 4: one-way time vs message size for raw MPL,
//! Nexus(MPL), and Nexus(MPL+TCP).

use nexus_bench::fig4;

fn main() {
    let rounds = 1_000;
    println!("=== Figure 4 — one-way communication time vs message size ===\n");
    let small = fig4::run(&fig4::small_sizes(), rounds);
    println!("{}", fig4::format("left panel: 0-1000 bytes", &small));
    let large = fig4::run(&fig4::large_sizes(), rounds);
    println!("{}", fig4::format("right panel: wider range", &large));
    print!("{}", fig4::summary(&small));
    print!("{}", fig4::summary(&large));
}
