//! # nexus-bench: regenerating every table and figure of the paper
//!
//! Each experiment of the SC '96 evaluation has a runner here and a binary
//! that prints the same rows/series the paper reports:
//!
//! | paper artifact | runner | binary |
//! |----------------|--------|--------|
//! | Fig. 4 (one-way time vs size; raw MPL / Nexus-MPL / Nexus-MPL+TCP) | [`fig4`] | `cargo run -p nexus-bench --bin fig4` |
//! | Fig. 6 (one-way time vs skip_poll, dual ping-pong, 0 B & 10 KB) | [`fig6`] | `cargo run -p nexus-bench --bin fig6` |
//! | Table 1 (coupled climate model, s/timestep) | [`table1`] | `cargo run -p nexus-bench --bin table1` |
//! | §4 MPICH-on-Nexus layering overhead (~6 %) | [`overhead`] | `cargo run -p nexus-bench --bin mpich_overhead` |
//! | §3.3 probe-cost differential (15 µs vs >100 µs) | [`pollcost`] | `cargo run -p nexus-bench --bin pollcost` |
//!
//! `cargo run -p nexus-bench --bin all` runs everything and is what
//! EXPERIMENTS.md records. [`ablation`] quantifies individual design
//! choices (lightweight startpoints, connection sharing, adaptive
//! skip_poll) via `--bin ablation`. [`rsrpath`] (`--bin rsrpath`),
//! [`patterns`] (`--bin patterns`), and [`bulkpath`] (`--bin bulkpath`)
//! gate the RSR hot path, the collective patterns, and the
//! eager/rendezvous bulk paths against tracked baselines. Criterion
//! microbenches of the runtime's hot paths live under `benches/`.

#![warn(missing_docs)]

pub mod ablation;
pub mod bulkpath;
pub mod fig4;
pub mod fig6;
pub mod overhead;
pub mod patterns;
pub mod pollcost;
pub mod report;
pub mod rsrpath;
pub mod table1;
