//! Table 1: the coupled climate model under each multimethod technique.

use crate::report;
use nexus_climate::{run_table1, Table1Config, Table1Row, Table1Variant};

/// The paper's rows (plus the TCP-everywhere sentence from §4's text).
pub fn variants() -> Vec<(&'static str, Table1Variant, Option<f64>)> {
    vec![
        ("Selective TCP", Table1Variant::SelectiveTcp, Some(104.9)),
        ("Forwarding", Table1Variant::Forwarding, Some(109.3)),
        ("skip poll 1", Table1Variant::SkipPoll(1), Some(109.1)),
        ("skip poll 100", Table1Variant::SkipPoll(100), Some(107.8)),
        (
            "skip poll 10000",
            Table1Variant::SkipPoll(10_000),
            Some(105.4),
        ),
        (
            "skip poll 12000",
            Table1Variant::SkipPoll(12_000),
            Some(105.0),
        ),
        (
            "skip poll 13000",
            Table1Variant::SkipPoll(13_000),
            Some(108.3),
        ),
        ("TCP everywhere", Table1Variant::TcpOnly, None),
    ]
}

/// Runs every row.
pub fn run(cfg: Table1Config) -> Vec<(&'static str, Table1Row, Option<f64>)> {
    variants()
        .into_iter()
        .map(|(label, v, paper)| (label, run_table1(v, cfg), paper))
        .collect()
}

/// Formats the table with the paper's values alongside.
pub fn format(rows: &[(&'static str, Table1Row, Option<f64>)]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, (label, row, paper))| {
            vec![
                (i + 1).to_string(),
                (*label).to_owned(),
                report::secs(row.secs_per_step),
                paper.map_or("-".to_owned(), |p| format!("{p:.1}")),
            ]
        })
        .collect();
    report::table(
        &["No.", "Experiment", "measured s/step", "paper s/step"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_run_and_format() {
        let cfg = Table1Config {
            n_atm: 4,
            n_ocean: 2,
            steps: 2,
            ..Table1Config::default()
        };
        let rows = run(cfg);
        assert_eq!(rows.len(), 8);
        let t = format(&rows);
        assert!(t.contains("Selective TCP"));
        assert!(t.contains("skip poll 12000"));
        assert!(t.contains("TCP everywhere"));
    }
}
