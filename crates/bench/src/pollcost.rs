//! Live probe-cost measurement (§3.3's 15 µs vs >100 µs differential).
//!
//! The whole skip_poll story rests on one fact: probing some methods is
//! much more expensive than probing others. On the paper's SP2 that was
//! `mpc_status` (15 µs) vs `select` (>100 µs); on a modern Linux box our
//! in-process queues probe in nanoseconds while a TCP readiness scan costs
//! microseconds of syscalls — a similar two-orders-of-magnitude gap, which
//! is what the unified-poll design problem actually needs.

use crate::report;
use nexus_rt::buffer::Buffer;
use nexus_rt::context::{ContextId, ContextInfo, Fabric, NodeId, PartitionId};
use nexus_rt::descriptor::MethodId;
use nexus_rt::module::{CommModule, CommReceiver};
use nexus_transports::{register_defaults, MplModule, ShmemModule, TcpModule, UdpModule};
use std::time::Instant;

/// Measured empty-poll cost of one method.
#[derive(Debug, Clone)]
pub struct ProbeCost {
    /// Method name.
    pub name: &'static str,
    /// Mean cost of one empty poll, nanoseconds.
    pub ns_per_poll: f64,
    /// The module's own a-priori hint (used by enquiry/QoS policies).
    pub hint_ns: u64,
}

fn info() -> ContextInfo {
    ContextInfo {
        id: ContextId(0),
        node: NodeId(0),
        partition: PartitionId(0),
    }
}

fn measure(mut rx: Box<dyn CommReceiver>, iters: u32) -> f64 {
    // Warm-up.
    for _ in 0..1000 {
        let _ = rx.poll();
    }
    let start = Instant::now();
    for _ in 0..iters {
        let _ = rx.poll().unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures every transport's empty-poll cost. `tcp_conns` idle
/// connections are attached to the TCP receiver first, since a readiness
/// scan's cost grows with the descriptor set (exactly like `select`).
pub fn run(iters: u32, tcp_conns: usize) -> Vec<ProbeCost> {
    let mut out = Vec::new();

    let shmem = ShmemModule::new();
    let (_, rx) = shmem.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "shmem",
        ns_per_poll: measure(rx, iters),
        hint_ns: shmem.poll_cost_ns(),
    });

    let mpl = MplModule::new();
    let (_, rx) = mpl.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "mpl",
        ns_per_poll: measure(rx, iters),
        hint_ns: mpl.poll_cost_ns(),
    });

    let udp = UdpModule::new();
    let (_, rx) = udp.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "udp",
        ns_per_poll: measure(rx, iters.min(200_000)),
        hint_ns: udp.poll_cost_ns(),
    });

    let tcp = TcpModule::new();
    let (desc, mut rx) = tcp.open(&info()).unwrap();
    // Attach idle connections so the scan has descriptors to visit.
    let mut objs = Vec::new();
    for _ in 0..tcp_conns {
        objs.push(tcp.connect(&info(), &desc).unwrap());
    }
    // Drain the accepts so the connections are registered.
    for _ in 0..1000 {
        let _ = rx.poll();
    }
    out.push(ProbeCost {
        name: "tcp",
        ns_per_poll: measure(rx, iters.min(100_000)),
        hint_ns: tcp.poll_cost_ns(),
    });
    drop(objs);
    out
}

/// Formats the measurement table.
pub fn format(rows: &[ProbeCost]) -> String {
    let cheap = rows
        .iter()
        .filter(|r| r.name == "mpl")
        .map(|r| r.ns_per_poll)
        .next()
        .unwrap_or(1.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                format!("{:.0}", r.ns_per_poll),
                format!("{:.1}x", r.ns_per_poll / cheap),
                r.hint_ns.to_string(),
            ]
        })
        .collect();
    format!(
        "empty-poll cost per method (paper's SP2: mpc_status 15 us, select >100 us)\n{}",
        report::table(&["method", "ns/poll", "vs mpl", "model hint ns"], &body)
    )
}

/// Per-method costs as the runtime itself measured them: the poll-cost
/// EWMA fed by the receiving context's `PollEngine` timing every probe,
/// and the send-cost EWMA fed by the sender timing every transport send.
/// `hint_ns` is the module's a-priori constant (the role the paper's §3.3
/// numbers — `mpc_status` 15 µs, `select` >100 µs — play in selection).
#[derive(Debug, Clone)]
pub struct MeasuredCost {
    /// Method name.
    pub name: &'static str,
    /// Poll-cost EWMA on the receiving context, ns (None if never probed).
    pub poll_ewma_ns: Option<f64>,
    /// Probe samples behind the poll EWMA.
    pub poll_samples: u64,
    /// Send-cost EWMA on the sending context, ns (None if never sent).
    pub send_ewma_ns: Option<f64>,
    /// Send samples behind the send EWMA.
    pub send_samples: u64,
    /// Doorbell wakeups on the receiving context. Readiness-tier methods
    /// deliver through these instead of timed probes, so for them
    /// `poll_samples` is legitimately 0 and this is the activity signal.
    pub ready_wakeups: u64,
    /// The module's own a-priori poll-cost hint.
    pub hint_ns: u64,
}

/// The module's a-priori poll-cost hint for a well-known method.
fn hint_ns(m: MethodId) -> u64 {
    match m {
        MethodId::SHMEM => ShmemModule::new().poll_cost_ns(),
        MethodId::MPL => MplModule::new().poll_cost_ns(),
        MethodId::UDP => UdpModule::new().poll_cost_ns(),
        MethodId::TCP => TcpModule::new().poll_cost_ns(),
        _ => 0,
    }
}

/// Drives real RSR traffic over each reliable method, lets the receive
/// loop spin over the quiet sources, then reads the measured EWMAs back
/// through the enquiry API ([`nexus_rt::context::Context::method_cost_estimate`]).
///
/// Only the polled fallback tier (mpl) accumulates poll-cost samples:
/// shmem and tcp ride the readiness doorbell, are never probed while
/// idle, and surface their activity as `ready_wakeups` instead.
pub fn measured(msgs_per_method: u32, quiet_polls: u32) -> Vec<MeasuredCost> {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    b.register_handler("m", |_| {});

    // UDP is unreliable, so only the methods where every RSR must arrive.
    let methods = [
        ("shmem", MethodId::SHMEM),
        ("mpl", MethodId::MPL),
        ("tcp", MethodId::TCP),
    ];
    for (_, m) in methods {
        let ep = b.create_endpoint();
        let sp = b.startpoint_to(ep).unwrap();
        sp.set_method(m);
        for _ in 0..msgs_per_method {
            a.rsr(&sp, "m", Buffer::new()).unwrap();
            let _ = b.progress();
        }
    }
    // Quiet passes: every enabled method's receiver gets probed empty,
    // so each poll-cost EWMA settles on that method's live probe cost.
    for _ in 0..quiet_polls {
        let _ = b.progress();
    }

    let out = methods
        .iter()
        .map(|&(name, m)| {
            let rx = b.method_cost_estimate(m); // poll side lives on the receiver
            let tx = a.method_cost_estimate(m); // send side lives on the sender
            MeasuredCost {
                name,
                poll_ewma_ns: rx.poll_cost_ns,
                poll_samples: rx.poll_samples,
                send_ewma_ns: tx.send_cost_ns,
                send_samples: tx.send_samples,
                ready_wakeups: b.stats().snapshot_method(m).ready_wakeups,
                hint_ns: hint_ns(m),
            }
        })
        .collect();
    fabric.shutdown();
    out
}

/// Formats the measured-EWMA table next to the a-priori hints.
pub fn format_measured(rows: &[MeasuredCost]) -> String {
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.0}"),
        None => "-".to_owned(),
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                opt(r.poll_ewma_ns),
                r.poll_samples.to_string(),
                opt(r.send_ewma_ns),
                r.send_samples.to_string(),
                r.ready_wakeups.to_string(),
                r.hint_ns.to_string(),
            ]
        })
        .collect();
    format!(
        "runtime-measured cost EWMAs (trace layer) vs a-priori hints\n\
         (readiness-tier methods show wakeups instead of probe samples)\n{}",
        report::table(
            &[
                "method",
                "poll EWMA ns",
                "probes",
                "send EWMA ns",
                "sends",
                "wakeups",
                "hint ns",
            ],
            &body
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_probe_is_much_more_expensive_than_queue_probe() {
        let rows = run(100_000, 4);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().ns_per_poll;
        let mpl = get("mpl");
        let tcp = get("tcp");
        assert!(
            tcp > 10.0 * mpl,
            "the probe-cost differential that motivates skip_poll must \
             exist live: mpl {mpl:.0} ns vs tcp {tcp:.0} ns"
        );
    }

    #[test]
    fn format_lists_all_methods() {
        let rows = run(10_000, 1);
        let t = format(&rows);
        for m in ["shmem", "mpl", "udp", "tcp"] {
            assert!(t.contains(m));
        }
    }

    #[test]
    fn measured_ewmas_have_samples_for_every_driven_method() {
        let rows = measured(20, 500);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            if r.name == "mpl" {
                // Polled fallback tier: every probe is timed.
                assert!(
                    r.poll_samples > 0 && r.poll_ewma_ns.is_some(),
                    "{} poll EWMA never fed",
                    r.name
                );
            } else {
                // Readiness tier: no timed probes, but the doorbell must
                // have fired for every delivered batch.
                assert_eq!(
                    r.poll_samples, 0,
                    "{} rides the doorbell; its visits must be untimed",
                    r.name
                );
                assert!(r.ready_wakeups > 0, "{} doorbell never rang", r.name);
            }
            assert!(
                r.send_samples >= 20 && r.send_ewma_ns.is_some(),
                "{} send EWMA never fed",
                r.name
            );
        }
        let t = format_measured(&rows);
        for m in ["shmem", "mpl", "tcp"] {
            assert!(t.contains(m));
        }
    }
}
