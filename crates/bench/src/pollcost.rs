//! Live probe-cost measurement (§3.3's 15 µs vs >100 µs differential).
//!
//! The whole skip_poll story rests on one fact: probing some methods is
//! much more expensive than probing others. On the paper's SP2 that was
//! `mpc_status` (15 µs) vs `select` (>100 µs); on a modern Linux box our
//! in-process queues probe in nanoseconds while a TCP readiness scan costs
//! microseconds of syscalls — a similar two-orders-of-magnitude gap, which
//! is what the unified-poll design problem actually needs.

use crate::report;
use nexus_rt::context::{ContextId, ContextInfo, NodeId, PartitionId};
use nexus_rt::module::{CommModule, CommReceiver};
use nexus_transports::{MplModule, ShmemModule, TcpModule, UdpModule};
use std::time::Instant;

/// Measured empty-poll cost of one method.
#[derive(Debug, Clone)]
pub struct ProbeCost {
    /// Method name.
    pub name: &'static str,
    /// Mean cost of one empty poll, nanoseconds.
    pub ns_per_poll: f64,
    /// The module's own a-priori hint (used by enquiry/QoS policies).
    pub hint_ns: u64,
}

fn info() -> ContextInfo {
    ContextInfo {
        id: ContextId(0),
        node: NodeId(0),
        partition: PartitionId(0),
    }
}

fn measure(mut rx: Box<dyn CommReceiver>, iters: u32) -> f64 {
    // Warm-up.
    for _ in 0..1000 {
        let _ = rx.poll();
    }
    let start = Instant::now();
    for _ in 0..iters {
        let _ = rx.poll().unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures every transport's empty-poll cost. `tcp_conns` idle
/// connections are attached to the TCP receiver first, since a readiness
/// scan's cost grows with the descriptor set (exactly like `select`).
pub fn run(iters: u32, tcp_conns: usize) -> Vec<ProbeCost> {
    let mut out = Vec::new();

    let shmem = ShmemModule::new();
    let (_, rx) = shmem.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "shmem",
        ns_per_poll: measure(rx, iters),
        hint_ns: shmem.poll_cost_ns(),
    });

    let mpl = MplModule::new();
    let (_, rx) = mpl.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "mpl",
        ns_per_poll: measure(rx, iters),
        hint_ns: mpl.poll_cost_ns(),
    });

    let udp = UdpModule::new();
    let (_, rx) = udp.open(&info()).unwrap();
    out.push(ProbeCost {
        name: "udp",
        ns_per_poll: measure(rx, iters.min(200_000)),
        hint_ns: udp.poll_cost_ns(),
    });

    let tcp = TcpModule::new();
    let (desc, mut rx) = tcp.open(&info()).unwrap();
    // Attach idle connections so the scan has descriptors to visit.
    let mut objs = Vec::new();
    for _ in 0..tcp_conns {
        objs.push(tcp.connect(&info(), &desc).unwrap());
    }
    // Drain the accepts so the connections are registered.
    for _ in 0..1000 {
        let _ = rx.poll();
    }
    out.push(ProbeCost {
        name: "tcp",
        ns_per_poll: measure(rx, iters.min(100_000)),
        hint_ns: tcp.poll_cost_ns(),
    });
    drop(objs);
    out
}

/// Formats the measurement table.
pub fn format(rows: &[ProbeCost]) -> String {
    let cheap = rows
        .iter()
        .filter(|r| r.name == "mpl")
        .map(|r| r.ns_per_poll)
        .next()
        .unwrap_or(1.0);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                format!("{:.0}", r.ns_per_poll),
                format!("{:.1}x", r.ns_per_poll / cheap),
                r.hint_ns.to_string(),
            ]
        })
        .collect();
    format!(
        "empty-poll cost per method (paper's SP2: mpc_status 15 us, select >100 us)\n{}",
        report::table(&["method", "ns/poll", "vs mpl", "model hint ns"], &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_probe_is_much_more_expensive_than_queue_probe() {
        let rows = run(100_000, 4);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().ns_per_poll;
        let mpl = get("mpl");
        let tcp = get("tcp");
        assert!(
            tcp > 10.0 * mpl,
            "the probe-cost differential that motivates skip_poll must \
             exist live: mpl {mpl:.0} ns vs tcp {tcp:.0} ns"
        );
    }

    #[test]
    fn format_lists_all_methods() {
        let rows = run(10_000, 1);
        let t = format(&rows);
        for m in ["shmem", "mpl", "udp", "tcp"] {
            assert!(t.contains(m));
        }
    }
}
