//! Plain-text table formatting for the experiment binaries.

/// Renders a simple aligned table: one header row, then data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>w$}", c, w = widths[i]));
        }
        out.push('\n');
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    line(&hdr, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Formats a microsecond value for table cells.
pub fn us(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a seconds value for table cells.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a megabytes-per-second value.
pub fn mbps(bytes: f64, seconds: f64) -> String {
    format!("{:.1}", bytes / seconds / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["size", "time"],
            &[
                vec!["0".into(), "83.0".into()],
                vec!["100000".into(), "156.2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size") && lines[0].contains("time"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns line up.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(us(83.04), "83.0");
        assert_eq!(secs(104.949), "104.95");
        assert_eq!(mbps(36_000_000.0, 1.0), "36.0");
    }
}
