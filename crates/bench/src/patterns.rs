//! CommBench-style collective pattern suite (`--bin patterns`).
//!
//! The striped bulk path (core::stripe) claims that one logical transfer
//! can ride several method-heterogeneous links at once. This harness
//! measures the three canonical multi-link usage patterns over in-process
//! queue rails, sweeping rail/link count and payload size:
//!
//! * **rail** — one destination, `links` parallel rails (one queue method
//!   per rail), one `Context::rsr` per op carried by `set_striped` across
//!   every rail at once. The aggregate-bandwidth pattern.
//! * **fan** — `links` destinations, the payload split into one
//!   contiguous piece per link by [`Context::scatter`], each piece
//!   travelling whole over the single cheapest method. The distribution
//!   pattern.
//! * **striped-scatter** — fan's split combined with rail's striping:
//!   every scattered piece is itself striped across the rails of its
//!   link (pieces below the stripe cutoff pass through whole, so at
//!   small payloads this pattern deliberately degenerates to fan).
//!
//! Every pattern moves exactly `payload` bytes per op, so ns/op is
//! directly comparable across patterns at a given (links, payload) cell.
//! The `patterns` binary wires in a counting global allocator and
//! emits/validates `BENCH_stripe.json` with the same min-of-batches
//! estimator and CI gate as `rsrpath`.

use crate::report;
use crate::rsrpath::Json;
use bytes::Bytes;
use nexus_rt::buffer::Buffer;
use nexus_rt::context::{Context, ContextInfo, Fabric};
use nexus_rt::descriptor::{CommDescriptor, MethodId};
use nexus_rt::error::Result as NexusResult;
use nexus_rt::module::{CommModule, CommObject, CommReceiver};
use nexus_rt::rsr::{Rsr, WireFrame};
use nexus_transports::queue::{QueueDescriptor, QueueMedium, QueueObject, QueueReceiver};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stripe cutoff installed by the rail/striped-scatter patterns: low
/// enough that every payload in the matrix stripes on the rail pattern,
/// while scattered pieces below it show the cutoff's whole-message
/// bypass exactly as production traffic would.
pub const CUTOFF: usize = 2048;

/// Batches per scenario; ns/op is the fastest batch (deterministic work,
/// so the minimum estimates true cost — see `rsrpath`).
const MIN_OF_BATCHES: u32 = 8;

/// Benchmark configuration: iteration counts and the scenario matrix.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed iterations per scenario at the smallest payload (scaled
    /// down as payloads grow).
    pub iters: u32,
    /// Untimed warm-up iterations per scenario.
    pub warmup: u32,
    /// Payload sizes in bytes (total bytes moved per op, all patterns).
    pub payloads: Vec<usize>,
    /// Rail/link counts swept for every pattern.
    pub link_counts: Vec<usize>,
}

impl Config {
    /// The full matrix the checked-in numbers use.
    pub fn full() -> Self {
        Config {
            iters: 2_000,
            warmup: 100,
            payloads: vec![4_096, 65_536, 262_144, 1_048_576, 4_194_304],
            link_counts: vec![1, 2, 4, 8],
        }
    }

    /// A fast CI-friendly run over a reduced payload sweep.
    pub fn smoke() -> Self {
        Config {
            iters: 320,
            warmup: 24,
            payloads: vec![4_096, 262_144, 4_194_304],
            link_counts: vec![1, 2, 4, 8],
        }
    }

    /// Iterations for one payload size: large payloads copy megabytes
    /// per op, so they run far fewer timed iterations.
    fn iters_for(&self, payload: usize) -> u32 {
        if payload >= 1 << 20 {
            (self.iters / 40).max(24)
        } else if payload >= 1 << 16 {
            (self.iters / 8).max(40)
        } else {
            self.iters
        }
    }
}

/// The three patterns, in sweep order.
pub const PATTERNS: [&str; 3] = ["rail", "fan", "striped-scatter"];

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Pattern name (one of [`PATTERNS`]).
    pub pattern: String,
    /// Rail count (rail pattern) or destination-link count (fan,
    /// striped-scatter — which also stripes each link over this many
    /// rails).
    pub links: usize,
    /// Total bytes moved per op.
    pub payload: usize,
    /// Nanoseconds per op (send + delivery + dispatch of every piece).
    pub ns_per_op: f64,
    /// Global-allocator calls per op.
    pub allocs_per_op: f64,
}

impl Scenario {
    fn key(&self) -> (&str, usize, usize) {
        (self.pattern.as_str(), self.links, self.payload)
    }

    /// Effective goodput in MiB/s implied by ns/op.
    pub fn mib_per_s(&self) -> f64 {
        if self.ns_per_op <= 0.0 {
            return 0.0;
        }
        (self.payload as f64 / (1 << 20) as f64) / (self.ns_per_op / 1e9)
    }
}

/// A queue-backed rail: identical to the shmem queue transport but with
/// its own method id and medium, so registering `n` of them gives a link
/// `n` genuinely distinct methods for the stripe planner to spread over.
struct RailModule {
    method: MethodId,
    rank: u32,
    medium: Arc<QueueMedium>,
}

impl RailModule {
    fn new(i: usize) -> Self {
        RailModule {
            method: MethodId(0x200 + i as u16),
            // Distinct ranks keep single-method selection deterministic
            // (the fan pattern always rides rail 0).
            rank: 10 + i as u32,
            medium: Arc::new(QueueMedium::new()),
        }
    }
}

impl CommModule for RailModule {
    fn method(&self) -> MethodId {
        self.method
    }

    fn name(&self) -> &'static str {
        "bench-rail"
    }

    fn cost_rank(&self) -> u32 {
        self.rank
    }

    fn open(&self, ctx: &ContextInfo) -> NexusResult<(CommDescriptor, Box<dyn CommReceiver>)> {
        let desc = QueueDescriptor::encode(self.method, ctx);
        let rx = QueueReceiver::new(Arc::clone(&self.medium), ctx.id);
        Ok((desc, Box::new(rx)))
    }

    fn applicable(&self, _local: &ContextInfo, desc: &CommDescriptor) -> bool {
        desc.method == self.method
    }

    fn connect(
        &self,
        _local: &ContextInfo,
        desc: &CommDescriptor,
    ) -> NexusResult<Arc<dyn CommObject>> {
        let d = QueueDescriptor::decode(desc)?;
        let inner = QueueObject::connect(self.method, &self.medium, d.context)?;
        Ok(Arc::new(CopyWire { inner }))
    }

    fn poll_cost_ns(&self) -> u64 {
        100
    }
}

/// Imposes exactly one copy per byte per hop on the otherwise zero-copy
/// in-process queue: a plain `send` splices the payload through a pooled
/// buffer, and `send_parts` delegates to the queue's own single-copy
/// head++tail combine. Without this, whole-message patterns move `Bytes`
/// handles for free while striped chunks pay real memcpy, and the
/// rail-vs-fan comparison would be meaningless at large payloads.
struct CopyWire {
    inner: Arc<dyn CommObject>,
}

impl CommObject for CopyWire {
    fn method(&self) -> MethodId {
        self.inner.method()
    }

    fn send(&self, rsr: &Rsr, frame: &WireFrame) -> NexusResult<()> {
        let mut buf = nexus_rt::pool::take(rsr.payload.len());
        buf.extend_from_slice(&rsr.payload);
        self.inner.send(
            &Rsr {
                dest: rsr.dest,
                endpoint: rsr.endpoint,
                handler: rsr.handler.clone(),
                payload: buf.freeze(),
                ttl: rsr.ttl,
            },
            frame,
        )
    }

    fn send_parts(&self, rsr: &Rsr, head: &[u8], tail: &Bytes) -> NexusResult<()> {
        self.inner.send_parts(rsr, head, tail)
    }
}

/// Per-scenario fixture: a sender, a receiver draining into a delivery
/// counter, and a startpoint shaped for the pattern.
struct Fixture {
    fabric: Fabric,
    tx: Arc<Context>,
    rx: Arc<Context>,
    sp: nexus_rt::startpoint::Startpoint,
    received: Arc<AtomicU64>,
    /// Deliveries one op produces (1 for rail, `links` for the scatters).
    per_op: u64,
}

impl Fixture {
    /// Builds the fixture: `rails` queue modules, `endpoints` receiver
    /// endpoints merged into one startpoint, optionally striped.
    fn new(rails: usize, endpoints: usize, striped: bool) -> Fixture {
        let fabric = Fabric::new();
        for i in 0..rails {
            fabric.registry().register(Arc::new(RailModule::new(i)));
        }
        let tx = fabric.create_context().expect("create sender");
        let rx = fabric.create_context().expect("create receiver");
        let received = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&received);
        rx.register_handler("bench", move |_| {
            r.fetch_add(1, Ordering::Relaxed);
        });
        let mut sp: Option<nexus_rt::startpoint::Startpoint> = None;
        for _ in 0..endpoints {
            let s = rx
                .startpoint_to(rx.create_endpoint())
                .expect("bind endpoint");
            match &mut sp {
                None => sp = Some(s),
                Some(acc) => acc.merge(&s),
            }
        }
        let sp = sp.expect("at least one endpoint");
        if striped {
            // With a single rail there is nothing to stripe over and
            // set_striped correctly declines; the link then rides the
            // one queue method whole, which is the honest 1-rail row.
            let n = tx.set_striped(&sp, CUTOFF).expect("install stripe");
            assert!(
                rails < 2 || n == endpoints,
                "striped {n} of {endpoints} links"
            );
        }
        Fixture {
            fabric,
            tx,
            rx,
            sp,
            received,
            per_op: endpoints as u64,
        }
    }

    fn drain_to(&self, expected: u64) {
        while self.received.load(Ordering::Relaxed) < expected {
            self.rx.progress().expect("progress");
        }
    }
}

/// Runs one (pattern, links, payload) scenario and reports min-of-batches
/// ns/op plus mean allocs/op. `alloc_count` reads the process-wide
/// allocation counter (the binary's counting global allocator).
fn run_scenario(
    pattern: &str,
    links: usize,
    payload: usize,
    iters: u32,
    warmup: u32,
    alloc_count: &dyn Fn() -> u64,
) -> Scenario {
    // rail: `links` rails into ONE endpoint, striped. fan: one rail,
    // `links` endpoints, plain scatter. striped-scatter: `links` rails
    // AND `links` endpoints, each piece striped over every rail.
    let fx = match pattern {
        "rail" => Fixture::new(links, 1, true),
        "fan" => Fixture::new(1, links, false),
        "striped-scatter" => Fixture::new(links, links, true),
        other => panic!("unknown pattern {other}"),
    };
    let data = Bytes::from((0..payload).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let mut expected = 0_u64;
    let mut pump = |n: u32| {
        for _ in 0..n {
            if pattern == "rail" {
                fx.tx
                    .rsr(&fx.sp, "bench", Buffer::from_bytes(data.clone()))
                    .expect("rsr");
            } else {
                fx.tx
                    .scatter(&fx.sp, "bench", Buffer::from_bytes(data.clone()))
                    .expect("scatter");
            }
            expected += fx.per_op;
            fx.drain_to(expected);
        }
    };
    pump(warmup);
    let per_batch = (iters / MIN_OF_BATCHES).max(1);
    let allocs0 = alloc_count();
    let mut best_ns = f64::INFINITY;
    for _ in 0..MIN_OF_BATCHES {
        let t0 = Instant::now();
        pump(per_batch);
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(per_batch);
        best_ns = best_ns.min(ns);
    }
    let allocs = alloc_count() - allocs0;
    fx.fabric.shutdown();
    Scenario {
        pattern: pattern.to_owned(),
        links,
        payload,
        ns_per_op: best_ns,
        allocs_per_op: allocs as f64 / f64::from(MIN_OF_BATCHES * per_batch),
    }
}

/// Runs the whole pattern × links × payload matrix.
pub fn run(cfg: &Config, alloc_count: &dyn Fn() -> u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for pattern in PATTERNS {
        for &links in &cfg.link_counts {
            for &payload in &cfg.payloads {
                out.push(run_scenario(
                    pattern,
                    links,
                    payload,
                    cfg.iters_for(payload),
                    cfg.warmup,
                    alloc_count,
                ));
            }
        }
    }
    out
}

/// Formats the scenario table.
pub fn format(rows: &[Scenario]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|s| {
            vec![
                s.pattern.clone(),
                s.links.to_string(),
                s.payload.to_string(),
                format!("{:.0}", s.ns_per_op),
                format!("{:.0}", s.mib_per_s()),
                format!("{:.1}", s.allocs_per_op),
            ]
        })
        .collect();
    format!(
        "collective patterns over in-process queue rails (payload bytes moved per op)\n{}",
        report::table(
            &[
                "pattern",
                "links",
                "payload B",
                "ns/op",
                "MiB/s",
                "allocs/op"
            ],
            &body
        )
    )
}

/// Serializes scenarios as a JSON array (stable field order).
pub fn results_json(rows: &[Scenario]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"pattern\": \"{}\", \"links\": {}, \"payload\": {}, \"ns_per_op\": {:.1}, \"allocs_per_op\": {:.1}}}",
                s.pattern, s.links, s.payload, s.ns_per_op, s.allocs_per_op
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// The document the `patterns` binary writes.
pub fn document_json(rows: &[Scenario]) -> String {
    format!(
        "{{\n  \"schema\": \"nexus-stripe-v1\",\n  \"results\": {}\n}}\n",
        results_json(rows)
    )
}

/// Extracts the scenario array under `key` from a tracked document
/// (parsed with [`crate::rsrpath::parse_json`]).
pub fn scenarios_from(doc: &Json, key: &str) -> Option<Vec<Scenario>> {
    let arr = match doc.get(key)? {
        Json::Arr(a) => a,
        _ => return None,
    };
    let mut out = Vec::new();
    for item in arr {
        let pattern = match item.get("pattern")? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        out.push(Scenario {
            pattern,
            links: item.get("links")?.num()? as usize,
            payload: item.get("payload")?.num()? as usize,
            ns_per_op: item.get("ns_per_op")?.num()?,
            allocs_per_op: item.get("allocs_per_op")?.num()?,
        });
    }
    Some(out)
}

/// Compares `current` against the tracked baseline. Returns one message
/// per regression: ns/op more than `ns_tolerance` above baseline, or
/// allocs/op meaningfully above the pinned budget. Scenarios absent from
/// the baseline are ignored (new rows are not regressions).
pub fn check(current: &[Scenario], baseline: &[Scenario], ns_tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        let ns_limit = base.ns_per_op * (1.0 + ns_tolerance);
        if cur.ns_per_op > ns_limit {
            failures.push(format!(
                "{} links={} payload={}: ns/op {:.0} exceeds baseline {:.0} by more than \
                 {:.0} % (limit {:.0})",
                cur.pattern,
                cur.links,
                cur.payload,
                cur.ns_per_op,
                base.ns_per_op,
                ns_tolerance * 100.0,
                ns_limit
            ));
        }
        let alloc_limit = base.allocs_per_op * 1.25 + 2.0;
        if cur.allocs_per_op > alloc_limit {
            failures.push(format!(
                "{} links={} payload={}: allocs/op {:.1} exceeds baseline {:.1} (limit {:.1})",
                cur.pattern,
                cur.links,
                cur.payload,
                cur.allocs_per_op,
                base.allocs_per_op,
                alloc_limit
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsrpath::parse_json;

    fn s(pattern: &str, links: usize, payload: usize, ns: f64, allocs: f64) -> Scenario {
        Scenario {
            pattern: pattern.to_owned(),
            links,
            payload,
            ns_per_op: ns,
            allocs_per_op: allocs,
        }
    }

    #[test]
    fn smoke_run_covers_every_pattern() {
        let cfg = Config {
            iters: 24,
            warmup: 4,
            payloads: vec![4_096, 65_536],
            link_counts: vec![1, 2],
        };
        let rows = run(&cfg, &|| 0);
        assert_eq!(rows.len(), 3 * 2 * 2);
        assert!(rows.iter().all(|r| r.ns_per_op > 0.0));
        for p in PATTERNS {
            assert!(rows.iter().any(|r| r.pattern == p));
        }
        let t = format(&rows);
        assert!(t.contains("striped-scatter"));
        assert!(t.contains("MiB/s"));
    }

    #[test]
    fn json_roundtrip_through_parser() {
        let rows = vec![
            s("rail", 4, 65_536, 20_000.0, 0.0),
            s("striped-scatter", 8, 4_194_304, 9.5e6, 12.0),
        ];
        let doc = document_json(&rows);
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(
            parsed.get("schema"),
            Some(&Json::Str("nexus-stripe-v1".to_owned()))
        );
        let back = scenarios_from(&parsed, "results").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].pattern, "rail");
        assert_eq!(back[1].payload, 4_194_304);
        assert!((back[1].ns_per_op - 9.5e6).abs() < 1e-3);
    }

    #[test]
    fn check_gates_ns_and_allocs_per_pattern() {
        let base = vec![s("rail", 2, 4096, 10_000.0, 4.0)];
        assert!(check(&[s("rail", 2, 4096, 12_000.0, 4.0)], &base, 0.25).is_empty());
        let ns_fail = check(&[s("rail", 2, 4096, 13_000.0, 4.0)], &base, 0.25);
        assert_eq!(ns_fail.len(), 1);
        assert!(ns_fail[0].contains("ns/op"));
        let alloc_fail = check(&[s("rail", 2, 4096, 9_000.0, 30.0)], &base, 0.25);
        assert_eq!(alloc_fail.len(), 1);
        assert!(alloc_fail[0].contains("allocs/op"));
        // Different pattern at the same shape is a different scenario.
        assert!(check(&[s("fan", 2, 4096, 9e9, 9e9)], &base, 0.25).is_empty());
    }
}
