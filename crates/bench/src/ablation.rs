//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Heavyweight vs lightweight startpoints** (§3.1): the descriptor
//!    table makes startpoints "rather heavyweight"; the lightweight form
//!    omits it. Measures both wire sizes.
//! 2. **Communication-object sharing** (§3.1): objects are cached per
//!    (context, method); the ablation counts how many connections N
//!    startpoints to one context actually open.
//! 3. **Adaptive vs fixed skip_poll** (§6 future work, implemented):
//!    drives a bursty mpl traffic pattern and reports the expensive-probe
//!    count and delivery outcome for fixed skip 1, fixed skip 64, and the
//!    adaptive controller — the adaptive one should approach the low poll
//!    count of the large skip while staying responsive inside bursts.
//!    mpl is the probe-only fallback tier (the paper's `mpc_status`
//!    example): socket methods now ride the readiness doorbell and are
//!    visited per-arrival, so skip_poll no longer applies to them.

use nexus_rt::buffer::Buffer;
use nexus_rt::context::Fabric;
use nexus_rt::descriptor::MethodId;
use nexus_rt::poll::AdaptiveSkipPoll;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wire sizes of the two startpoint representations.
#[derive(Debug, Clone, Copy)]
pub struct StartpointSizes {
    /// Full representation (descriptor table attached).
    pub heavyweight_bytes: usize,
    /// Table omitted (receiver reconstructs it).
    pub lightweight_bytes: usize,
}

/// Measures startpoint wire sizes with the full default module set.
pub fn startpoint_sizes() -> StartpointSizes {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    let ctx = fabric.create_context().unwrap();
    let ep = ctx.create_endpoint();
    let heavy = ctx.startpoint_to(ep).unwrap();
    let light = ctx.startpoint_to_lightweight(ep).unwrap();
    let sizes = StartpointSizes {
        heavyweight_bytes: heavy.wire_len(),
        lightweight_bytes: light.wire_len(),
    };
    fabric.shutdown();
    sizes
}

/// Connections opened for `n` startpoints to the same context.
pub fn connection_sharing(n: usize) -> usize {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    b.register_handler("x", |_| {});
    let mut sps = Vec::new();
    for _ in 0..n {
        let ep = b.create_endpoint();
        sps.push(b.startpoint_to(ep).unwrap());
    }
    for sp in &sps {
        a.rsr(sp, "x", Buffer::new()).unwrap();
    }
    let conns = a.cached_connections();
    fabric.shutdown();
    conns
}

/// One row of the adaptive-skip_poll ablation.
#[derive(Debug, Clone)]
pub struct SkipAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Expensive (mpl, probe-only) polls performed.
    pub probes: u64,
    /// Messages delivered (must equal the sent count).
    pub delivered: u64,
    /// Final skip value (enquiry).
    pub final_skip: u64,
}

/// Drives a bursty mpl workload under one polling configuration:
/// `bursts` bursts of `burst_len` messages, each followed by a long quiet
/// period of `quiet_polls` empty progress calls. mpl is the method that
/// still lives in the polled rotation, so skip_poll governs its probes.
fn run_skip_config(
    label: &'static str,
    cfg: Option<Option<AdaptiveSkipPoll>>, // None = skip 1; Some(None) = fixed 64; Some(Some(c)) = adaptive
    bursts: u32,
    burst_len: u32,
    quiet_polls: u32,
) -> SkipAblationRow {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    match cfg {
        None => {}
        Some(None) => {
            b.set_skip_poll(MethodId::MPL, 64);
        }
        Some(Some(c)) => {
            b.set_adaptive_skip_poll(MethodId::MPL, c);
        }
    }
    let delivered = Arc::new(AtomicU64::new(0));
    {
        let d = Arc::clone(&delivered);
        b.register_handler("m", move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        });
    }
    let ep = b.create_endpoint();
    let sp = b.startpoint_to(ep).unwrap();
    sp.set_method(MethodId::MPL);
    for _ in 0..bursts {
        let target = delivered.load(Ordering::Relaxed) + burst_len as u64;
        for _ in 0..burst_len {
            a.rsr(&sp, "m", Buffer::new()).unwrap();
        }
        // Drain the burst.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while delivered.load(Ordering::Relaxed) < target {
            let _ = b.progress();
            assert!(std::time::Instant::now() < deadline, "burst must drain");
        }
        // Quiet period: the poll loop keeps spinning with nothing to do.
        for _ in 0..quiet_polls {
            let _ = b.progress();
        }
    }
    let row = SkipAblationRow {
        label,
        probes: b.stats().snapshot_method(MethodId::MPL).polls,
        delivered: delivered.load(Ordering::Relaxed),
        final_skip: b.skip_poll(MethodId::MPL).unwrap_or(0),
    };
    fabric.shutdown();
    row
}

/// Runs the three polling configurations on the same workload.
pub fn skip_poll_ablation(bursts: u32, burst_len: u32, quiet_polls: u32) -> Vec<SkipAblationRow> {
    vec![
        run_skip_config("fixed skip 1", None, bursts, burst_len, quiet_polls),
        run_skip_config("fixed skip 64", Some(None), bursts, burst_len, quiet_polls),
        run_skip_config(
            "adaptive (1..256, grow_after 8)",
            Some(Some(AdaptiveSkipPoll {
                min: 1,
                max: 256,
                grow_after: 8,
                ..Default::default()
            })),
            bursts,
            burst_len,
            quiet_polls,
        ),
    ]
}

/// Formats the full ablation report.
pub fn format_report(
    sizes: StartpointSizes,
    conns_for: (usize, usize),
    skip_rows: &[SkipAblationRow],
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "startpoint wire size: heavyweight {} B (6-method descriptor table), \
         lightweight {} B ({}x smaller — §3.1's optimization)\n",
        sizes.heavyweight_bytes,
        sizes.lightweight_bytes,
        sizes.heavyweight_bytes / sizes.lightweight_bytes.max(1)
    ));
    s.push_str(&format!(
        "connection sharing: {} startpoints to one context -> {} connection(s)\n\n",
        conns_for.0, conns_for.1
    ));
    s.push_str("adaptive skip_poll ablation (bursty mpl traffic, polled tier):\n");
    s.push_str(&crate::report::table(
        &["configuration", "mpl probes", "delivered", "final skip"],
        &skip_rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_owned(),
                    r.probes.to_string(),
                    r.delivered.to_string(),
                    r.final_skip.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightweight_startpoints_are_much_smaller() {
        let s = startpoint_sizes();
        assert!(
            s.heavyweight_bytes >= 4 * s.lightweight_bytes,
            "{} vs {}",
            s.heavyweight_bytes,
            s.lightweight_bytes
        );
        assert_eq!(s.lightweight_bytes, 15, "fixed header only");
    }

    #[test]
    fn many_startpoints_share_one_connection() {
        assert_eq!(connection_sharing(10), 1);
    }

    #[test]
    fn adaptive_beats_skip_1_on_probes_and_loses_nothing() {
        let rows = skip_poll_ablation(3, 20, 2_000);
        let by = |l: &str| rows.iter().find(|r| r.label.starts_with(l)).unwrap();
        let fixed1 = by("fixed skip 1");
        let adaptive = by("adaptive");
        assert_eq!(fixed1.delivered, adaptive.delivered, "no message lost");
        assert!(
            adaptive.probes * 4 < fixed1.probes,
            "adaptive cuts expensive probes: {} vs {}",
            adaptive.probes,
            fixed1.probes
        );
        assert!(
            adaptive.final_skip > 1,
            "controller backed off during the final quiet period"
        );
    }
}
