//! Figure 6: one-way time vs skip_poll for two concurrent ping-pongs.
//!
//! The Fig. 5 configuration: an MPL ping-pong inside a partition and a TCP
//! ping-pong between partitions run concurrently, sharing a node; the TCP
//! interface is polled every `skip_poll`-th pass. As skip_poll grows, MPL
//! recovers (fewer selects per pass) while TCP degrades (later
//! visibility); the paper finds skip_poll ≈ 20 a good joint operating
//! point. Left panel: 0-byte messages; right panel: 10 KB.

use crate::report;
use nexus_simnet::pingpong::{dual_pingpong, DualResult};

/// The skip_poll sweep used by the binary (paper plots a similar range).
pub fn default_skips() -> Vec<u64> {
    vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
}

/// Runs the sweep for one message size.
pub fn run(size: u64, mpl_rounds: u64, skips: &[u64]) -> Vec<DualResult> {
    skips
        .iter()
        .map(|&k| dual_pingpong(size, mpl_rounds, k))
        .collect()
}

/// Formats one panel.
pub fn format(title: &str, rows: &[DualResult]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.skip_poll.to_string(),
                report::us(r.mpl_one_way.as_us_f64()),
                match r.tcp_one_way {
                    Some(t) => report::us(t.as_us_f64()),
                    None => "-".to_owned(),
                },
                r.tcp_roundtrips.to_string(),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        report::table(
            &[
                "skip_poll",
                "MPL one-way (us)",
                "TCP one-way (us)",
                "TCP roundtrips"
            ],
            &body,
        )
    )
}

/// The shape summary the paper's text draws from the figure.
pub fn summary(rows: &[DualResult]) -> String {
    let at = |k: u64| rows.iter().find(|r| r.skip_poll == k);
    let mut s = String::new();
    if let (Some(r1), Some(r20)) = (at(1), at(20)) {
        let mpl_gain = (1.0 - r20.mpl_one_way.as_us_f64() / r1.mpl_one_way.as_us_f64()) * 100.0;
        let tcp_cost = match (r1.tcp_one_way, r20.tcp_one_way) {
            (Some(a), Some(b)) => (b.as_us_f64() / a.as_us_f64() - 1.0) * 100.0,
            _ => f64::NAN,
        };
        s.push_str(&format!(
            "skip_poll 20 vs 1: MPL improves {mpl_gain:.0}%, TCP degrades {tcp_cost:.0}% \
             (paper: ~20 improves MPL without significantly impacting TCP)\n"
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape() {
        let rows = run(0, 200, &[1, 20, 500]);
        assert_eq!(rows.len(), 3);
        // MPL monotone improvement across this range.
        assert!(rows[1].mpl_one_way < rows[0].mpl_one_way);
        // TCP worse at 500 than at 1.
        let t1 = rows[0].tcp_one_way.unwrap();
        let t500 = rows[2].tcp_one_way.unwrap();
        assert!(t500 > t1);
    }

    #[test]
    fn format_handles_missing_tcp() {
        let rows = run(0, 50, &[1]);
        let t = format("panel", &rows);
        assert!(t.contains("skip_poll"));
        assert!(!summary(&run(0, 200, &[1, 20])).is_empty());
    }
}
