//! Layering overhead on the real runtime (§4's "about 6 percent").
//!
//! The paper reports that MPICH layered on Nexus costs about 6 % in
//! execution time versus MPICH directly on MPL. We measure the analogous
//! stack-up on the real multithreaded runtime with in-process transports:
//!
//! 1. **bare transport** — frames moved straight through the queue medium
//!    (the "native MPL" floor);
//! 2. **Nexus RSR** — the full multimethod runtime (startpoints, selection,
//!    unified polling, handler dispatch);
//! 3. **mini-MPI on Nexus** — two-sided matching layered on RSRs (the
//!    MPICH-on-Nexus analog).
//!
//! The interesting number is the increment from layer 2 to layer 3: that
//! is the paper's layering overhead. (Layer 1→2 is the Nexus message-
//! driven-execution overhead of Fig. 4's lower-left panel.)

use nexus_mpi::{run_world, WorldLayout};
use nexus_rt::buffer::Buffer;
use nexus_rt::context::{ContextId, Fabric};
use nexus_rt::endpoint::EndpointId;
use nexus_rt::rsr::{Rsr, WireFrame};
use nexus_transports::queue::{QueueMedium, QueueObject, QueueReceiver};
use nexus_transports::register_queue_modules;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-way times (µs) for the three stacks.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Bare queue-transport ping-pong.
    pub bare_us: f64,
    /// Nexus RSR ping-pong.
    pub rsr_us: f64,
    /// Mini-MPI ping-pong.
    pub mpi_us: f64,
}

impl OverheadResult {
    /// Layering overhead of the MPI layer over raw RSRs, in percent.
    pub fn mpi_over_rsr_pct(&self) -> f64 {
        (self.mpi_us / self.rsr_us - 1.0) * 100.0
    }

    /// Overhead of the Nexus runtime over the bare transport, in percent.
    pub fn rsr_over_bare_pct(&self) -> f64 {
        (self.rsr_us / self.bare_us - 1.0) * 100.0
    }
}

/// Bare-transport ping-pong: two threads popping/pushing queue frames.
fn bare_pingpong(rounds: u64, size: usize) -> f64 {
    let medium = Arc::new(QueueMedium::new());
    use nexus_rt::module::CommReceiver;
    let mut rx_a = QueueReceiver::new(Arc::clone(&medium), ContextId(0));
    let mut rx_b = QueueReceiver::new(Arc::clone(&medium), ContextId(1));
    let to_b =
        QueueObject::connect(nexus_rt::descriptor::MethodId::MPL, &medium, ContextId(1)).unwrap();
    let to_a =
        QueueObject::connect(nexus_rt::descriptor::MethodId::MPL, &medium, ContextId(0)).unwrap();
    let payload = bytes::Bytes::from(vec![0u8; size]);
    let msg_b = Rsr::new(ContextId(1), EndpointId(1), "p", payload.clone());
    let msg_a = Rsr::new(ContextId(0), EndpointId(1), "p", payload);
    let echo = std::thread::spawn(move || {
        for _ in 0..rounds {
            loop {
                if rx_b.poll().unwrap().is_some() {
                    break;
                }
                std::thread::yield_now();
            }
            to_a.send(&msg_a, &WireFrame::new()).unwrap();
        }
    });
    let start = Instant::now();
    for _ in 0..rounds {
        to_b.send(&msg_b, &WireFrame::new()).unwrap();
        loop {
            if rx_a.poll().unwrap().is_some() {
                break;
            }
            std::thread::yield_now();
        }
    }
    let elapsed = start.elapsed();
    echo.join().unwrap();
    elapsed.as_secs_f64() * 1e6 / (2.0 * rounds as f64)
}

/// Nexus RSR ping-pong between two contexts on two threads.
fn rsr_pingpong(rounds: u64, size: usize) -> f64 {
    let fabric = Fabric::new();
    register_queue_modules(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    let count = Arc::new(AtomicU64::new(0));

    let ep_a = a.create_endpoint();
    let sp_to_a = a.startpoint_to(ep_a).unwrap();
    let ep_b = b.create_endpoint();
    let sp_to_b = b.startpoint_to(ep_b).unwrap();

    // B echoes every ping back to A.
    {
        let b_ctx = Arc::clone(&b);
        let sp = sp_to_a.clone();
        b.register_handler("ping", move |args| {
            let mut reply = Buffer::new();
            reply.put_raw(args.buffer.as_slice());
            b_ctx.rsr(&sp, "pong", reply).unwrap();
        });
    }
    {
        let c = Arc::clone(&count);
        a.register_handler("pong", move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let b_thread = {
        let stop = Arc::clone(&stop);
        let b = Arc::clone(&b);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if !matches!(b.progress(), Ok(n) if n > 0) {
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut payload = vec![0u8; size];
    let start = Instant::now();
    for i in 0..rounds {
        if let Some(first) = payload.first_mut() {
            *first = i as u8;
        }
        let mut buf = Buffer::with_capacity(size);
        buf.put_raw(&payload);
        a.rsr(&sp_to_b, "ping", buf).unwrap();
        let target = i + 1;
        while count.load(Ordering::Relaxed) < target {
            if !matches!(a.progress(), Ok(n) if n > 0) {
                std::thread::yield_now();
            }
        }
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    b_thread.join().unwrap();
    fabric.shutdown();
    elapsed.as_secs_f64() * 1e6 / (2.0 * rounds as f64)
}

/// Mini-MPI ping-pong (rank 0 measures).
fn mpi_pingpong(rounds: u64, size: usize) -> f64 {
    let result = Mutex::new(0.0f64);
    run_world(&WorldLayout::uniform(2), |p| {
        let c = p.world();
        let payload = vec![0u8; size];
        if p.rank() == 0 {
            let start = Instant::now();
            for _ in 0..rounds {
                c.send(1, 1, &payload).unwrap();
                c.recv(Some(1), Some(2)).unwrap();
            }
            *result.lock() = start.elapsed().as_secs_f64() * 1e6 / (2.0 * rounds as f64);
        } else {
            for _ in 0..rounds {
                let (_, _, d) = c.recv(Some(0), Some(1)).unwrap();
                c.send(0, 2, &d).unwrap();
            }
        }
    })
    .unwrap();
    result.into_inner()
}

/// Runs all three stacks.
pub fn run(rounds: u64, size: usize) -> OverheadResult {
    // Warm up allocators and thread machinery.
    let _ = bare_pingpong(rounds / 10 + 1, size);
    OverheadResult {
        bare_us: bare_pingpong(rounds, size),
        rsr_us: rsr_pingpong(rounds, size),
        mpi_us: mpi_pingpong(rounds, size),
    }
}

/// Formats the comparison.
pub fn format(r: &OverheadResult) -> String {
    format!(
        "one-way latency, in-process transport, {}-byte payload\n\
         bare transport : {:>8.2} us\n\
         Nexus RSR      : {:>8.2} us  (+{:.0}% over bare)\n\
         mini-MPI       : {:>8.2} us  (+{:.1}% over RSR; paper reports ~6% for MPICH-on-Nexus)\n",
        0,
        r.bare_us,
        r.rsr_us,
        r.rsr_over_bare_pct(),
        r.mpi_us,
        r.mpi_over_rsr_pct()
    )
}

/// Blocking-poller demonstration (§3.3's AIX thread refinement): TCP
/// messages are received by a dedicated blocking thread instead of the
/// poll rotation; returns (one-way µs with polling, one-way µs with a
/// blocking thread) for a TCP ping-pong.
pub fn blocking_poller_comparison(rounds: u64) -> (f64, f64) {
    fn tcp_pingpong(rounds: u64, blocking: bool) -> f64 {
        let fabric = Fabric::new();
        fabric
            .registry()
            .register(Arc::new(nexus_transports::TcpModule::new()));
        let a = fabric.create_context().unwrap();
        let b = fabric.create_context().unwrap();
        if blocking {
            a.start_blocking_poller(nexus_rt::descriptor::MethodId::TCP)
                .unwrap();
            b.start_blocking_poller(nexus_rt::descriptor::MethodId::TCP)
                .unwrap();
        }
        let count = Arc::new(AtomicU64::new(0));
        let ep_a = a.create_endpoint();
        let sp_to_a = a.startpoint_to(ep_a).unwrap();
        let ep_b = b.create_endpoint();
        let sp_to_b = b.startpoint_to(ep_b).unwrap();
        {
            let b_ctx = Arc::clone(&b);
            let sp = sp_to_a.clone();
            b.register_handler("ping", move |_| {
                b_ctx.rsr(&sp, "pong", Buffer::new()).unwrap();
            });
        }
        {
            let c = Arc::clone(&count);
            a.register_handler("pong", move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stop = Arc::new(AtomicBool::new(false));
        let b_thread = {
            let stop = Arc::clone(&stop);
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = b.progress();
                    if !blocking {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            })
        };
        let start = Instant::now();
        for i in 0..rounds {
            a.rsr(&sp_to_b, "ping", Buffer::new()).unwrap();
            while count.load(Ordering::Relaxed) < i + 1 {
                if !matches!(a.progress(), Ok(n) if n > 0) {
                    std::thread::yield_now();
                }
            }
        }
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        b_thread.join().unwrap();
        fabric.shutdown();
        elapsed.as_secs_f64() * 1e6 / (2.0 * rounds as f64)
    }
    (tcp_pingpong(rounds, false), tcp_pingpong(rounds, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_order_sanely() {
        let r = run(300, 64);
        assert!(r.bare_us > 0.0);
        // The runtime adds cost over the bare transport, and MPI adds cost
        // over raw RSRs (allow generous noise margins on shared CI boxes —
        // just require the floors).
        assert!(
            r.rsr_us > r.bare_us * 0.8,
            "rsr {} vs bare {}",
            r.rsr_us,
            r.bare_us
        );
        assert!(
            r.mpi_us > r.rsr_us * 0.8,
            "mpi {} vs rsr {}",
            r.mpi_us,
            r.rsr_us
        );
        let t = format(&r);
        assert!(t.contains("mini-MPI"));
    }

    #[test]
    fn blocking_poller_works_end_to_end() {
        let (poll_us, block_us) = blocking_poller_comparison(50);
        assert!(poll_us > 0.0 && block_us > 0.0);
    }
}
