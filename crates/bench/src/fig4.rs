//! Figure 4: one-way communication time vs message size.
//!
//! Three series on the simulated SP2, exactly the paper's configurations:
//! a low-level MPL program, Nexus with a single communication method
//! (MPL), and Nexus with two methods (MPL + TCP) where all traffic still
//! uses MPL — so every slowdown of the third series is pure multimethod
//! *detection* overhead. Left panel: 0–1000 bytes; right panel: up to
//! 1 MiB.

use crate::report;
use nexus_simnet::pingpong::{single_pingpong, PingPongMode};

/// One measured row of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Message size in bytes.
    pub size: u64,
    /// Low-level MPL program, one-way µs.
    pub raw_us: f64,
    /// Nexus, MPL only, one-way µs.
    pub nexus_mpl_us: f64,
    /// Nexus, MPL + TCP polling, one-way µs.
    pub nexus_mpl_tcp_us: f64,
}

/// The paper's left-panel sizes (0–1000 bytes).
pub fn small_sizes() -> Vec<u64> {
    (0..=10).map(|i| i * 100).collect()
}

/// The paper's right-panel sizes (wider range, to 1 MiB).
pub fn large_sizes() -> Vec<u64> {
    vec![
        0, 1_000, 4_000, 16_000, 64_000, 131_072, 262_144, 524_288, 1_048_576,
    ]
}

/// Runs the three ping-pong configurations for each size.
pub fn run(sizes: &[u64], rounds: u64) -> Vec<Fig4Row> {
    sizes
        .iter()
        .map(|&size| {
            // Fewer roundtrips for the big sizes keeps runtimes sane
            // without changing the mean (the simulation is deterministic).
            let r = if size >= 65_536 {
                rounds.min(50)
            } else {
                rounds
            };
            Fig4Row {
                size,
                raw_us: single_pingpong(PingPongMode::RawMpl, size, r).as_us_f64(),
                nexus_mpl_us: single_pingpong(PingPongMode::NexusMpl, size, r).as_us_f64(),
                nexus_mpl_tcp_us: single_pingpong(PingPongMode::NexusMplTcp, size, r).as_us_f64(),
            }
        })
        .collect()
}

/// Formats one panel as a table.
pub fn format(title: &str, rows: &[Fig4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                report::us(r.raw_us),
                report::us(r.nexus_mpl_us),
                report::us(r.nexus_mpl_tcp_us),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        report::table(
            &[
                "bytes",
                "raw MPL (us)",
                "Nexus MPL (us)",
                "Nexus MPL+TCP (us)"
            ],
            &body,
        )
    )
}

/// Headline anchors the run should reproduce (checked by tests and
/// reported by the binary): 0-byte Nexus/MPL ≈ 83 µs → ≈ 156 µs with TCP
/// polling; MPL ≈ 36 MB/s; visible large-message degradation from TCP
/// polling.
pub fn summary(rows: &[Fig4Row]) -> String {
    let zero = rows.iter().find(|r| r.size == 0);
    let big = rows.iter().rev().find(|r| r.size >= 1 << 20);
    let mut s = String::new();
    if let Some(z) = zero {
        s.push_str(&format!(
            "0-byte one-way: raw {:.1} us | Nexus(MPL) {:.1} us (paper: 83) | +TCP polling {:.1} us (paper: 156)\n",
            z.raw_us, z.nexus_mpl_us, z.nexus_mpl_tcp_us
        ));
    }
    if let Some(b) = big {
        let bw = b.size as f64 / (b.raw_us * 1e-6);
        s.push_str(&format!(
            "1 MiB: raw MPL bandwidth {} MB/s (paper: ~36); TCP polling degrades MPL by {:.0}%\n",
            report::mbps(b.size as f64, b.raw_us * 1e-6),
            (b.nexus_mpl_tcp_us / b.nexus_mpl_us - 1.0) * 100.0
        ));
        let _ = bw;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_requested_sizes() {
        let rows = run(&[0, 100], 50);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].size, 0);
        assert!(rows[0].raw_us < rows[0].nexus_mpl_us);
        assert!(rows[0].nexus_mpl_us < rows[0].nexus_mpl_tcp_us);
    }

    #[test]
    fn format_contains_all_series() {
        let rows = run(&[0], 10);
        let t = format("panel", &rows);
        assert!(t.contains("raw MPL"));
        assert!(t.contains("Nexus MPL+TCP"));
        let s = summary(&rows);
        assert!(s.contains("0-byte one-way"));
    }
}
