//! RSR data-path latency/allocation microbenchmark (`--bin rsrpath`).
//!
//! The paper's evaluation (Table 1, Fig. 4) is ultimately about
//! per-message overhead, and §5 credits a lean buffer-management path.
//! This harness measures exactly that: the full local-queue round trip of
//! one `Context::rsr` call — encode, enqueue, unified poll, decode,
//! dispatch — in nanoseconds and allocator calls per RSR, across payload
//! sizes and multicast widths. The `rsrpath` binary wires in a counting
//! global allocator and emits/validates `BENCH_rsr.json`, giving the repo
//! a tracked perf trajectory with a CI regression gate.

use crate::report;
use bytes::Bytes;
use nexus_rt::buffer::Buffer;
use nexus_rt::context::Fabric;
use nexus_rt::descriptor::MethodId;
use nexus_transports::register_queue_modules;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Benchmark configuration: iteration counts and the scenario matrix.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed iterations per scenario (scaled down for large payloads).
    pub iters: u32,
    /// Untimed warm-up iterations per scenario.
    pub warmup: u32,
    /// Payload sizes in bytes.
    pub payloads: Vec<usize>,
    /// Multicast widths (links per startpoint).
    pub link_counts: Vec<usize>,
    /// Source-count sweep: extra scenarios at links=1, payload=16 with
    /// this many *idle* readiness-armed sources registered alongside the
    /// hot local link. The readiness tier's O(ready) claim is exactly
    /// that these rows stay flat as the count grows.
    pub idle_sweep: Vec<usize>,
    /// Many-link worker sweep: `(links, workers)` scenarios at payload 16.
    /// `workers = 0` is the inline baseline (deliveries drained by
    /// `progress()` on the calling thread); `workers > 0` hands every
    /// armed source to a `core::shard::WorkerPool` of that size and the
    /// caller only waits on the dispatch counter. The sharded engine's
    /// claim is that ns/RSR stays flat-or-better as workers grow at high
    /// link counts.
    pub worker_sweep: Vec<(usize, usize)>,
    /// Timed iterations for worker-sweep rows: each call fans out `links`
    /// deliveries, so these rows run far fewer iterations than the base
    /// matrix.
    pub worker_iters: u32,
}

impl Config {
    /// The full matrix the checked-in numbers use.
    pub fn full() -> Self {
        Config {
            iters: 30_000,
            warmup: 2_000,
            payloads: vec![16, 4096, 262_144],
            link_counts: vec![1, 8],
            idle_sweep: vec![1, 64, 4096],
            worker_sweep: vec![(4096, 0), (4096, 1), (4096, 2), (4096, 4)],
            worker_iters: 192,
        }
    }

    /// A fast CI-friendly run over the same matrix.
    pub fn smoke() -> Self {
        Config {
            iters: 2_000,
            warmup: 200,
            payloads: vec![16, 4096, 262_144],
            link_counts: vec![1, 8],
            idle_sweep: vec![1, 64, 4096],
            worker_sweep: vec![(4096, 0), (4096, 1), (4096, 2), (4096, 4)],
            worker_iters: 48,
        }
    }

    /// Iterations for one payload size: large payloads run fewer timed
    /// iterations so the 256 KiB rows don't dominate wall-clock.
    fn iters_for(&self, payload: usize) -> u32 {
        if payload >= 65_536 {
            (self.iters / 10).max(200)
        } else {
            self.iters
        }
    }
}

/// Batches per scenario; the reported ns/RSR is the fastest batch (see
/// `run_scenario`).
const MIN_OF_BATCHES: u32 = 8;

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Multicast width (links on the startpoint).
    pub links: usize,
    /// Payload size in bytes.
    pub payload: usize,
    /// Idle readiness-armed sources registered alongside the hot link
    /// (0 for the base matrix).
    pub idle_sources: usize,
    /// Shard workers draining the sources (0 = inline `progress()` on the
    /// calling thread, the base matrix).
    pub workers: usize,
    /// Nanoseconds per `Context::rsr` call, including delivery+dispatch of
    /// every link's copy on the local queue.
    pub ns_per_rsr: f64,
    /// Global-allocator calls (alloc/realloc/alloc_zeroed) per `rsr` call.
    pub allocs_per_rsr: f64,
}

impl Scenario {
    fn key(&self) -> (usize, usize, usize, usize) {
        (self.links, self.payload, self.idle_sources, self.workers)
    }
}

/// Runs one scenario: a single context multicasting to `links` of its own
/// endpoints over the `local` queue method, draining each call before the
/// next so the queue never grows. `idle_sources` extra readiness-armed
/// in-process sources are registered but never sent to — their doorbells
/// stay silent, so the O(ready) engine must not spend time on them.
/// `alloc_count` reads the process-wide allocation counter (the binary's
/// counting global allocator).
fn run_scenario(
    links: usize,
    payload: usize,
    idle_sources: usize,
    iters: u32,
    warmup: u32,
    alloc_count: &dyn Fn() -> u64,
) -> Scenario {
    let fabric = Fabric::new();
    // Queue modules only: sockets would put µs of readiness-scan syscalls
    // in every poll pass and drown the data-path signal being measured.
    register_queue_modules(&fabric);
    for i in 0..idle_sources {
        fabric.registry().register(Arc::new(
            nexus_rt::module::test_support::TestModule::new(
                MethodId(0x100 + i as u16),
                "idle-ready",
                1_000,
                false,
            )
            .with_readiness(),
        ));
    }
    let ctx = fabric.create_context().expect("create bench context");
    let received = Arc::new(AtomicU64::new(0));
    let r = Arc::clone(&received);
    ctx.register_handler("bench", move |_| {
        r.fetch_add(1, Ordering::Relaxed);
    });
    let mut sp = ctx
        .startpoint_to(ctx.create_endpoint())
        .expect("bind startpoint");
    for _ in 1..links {
        sp.merge(
            &ctx.startpoint_to(ctx.create_endpoint())
                .expect("bind extra endpoint"),
        );
    }
    sp.set_method(MethodId::LOCAL);

    let data = Bytes::from(vec![0x5a_u8; payload]);
    let mut expected = 0_u64;
    let mut pump = |n: u32| {
        for _ in 0..n {
            ctx.rsr(&sp, "bench", Buffer::from_bytes(data.clone()))
                .expect("rsr");
            expected += links as u64;
            while received.load(Ordering::Relaxed) < expected {
                ctx.progress().expect("progress");
            }
        }
    };
    pump(warmup);
    // Latency is reported as the best of several batches: per-RSR cost is
    // deterministic, so the minimum estimates the true cost while the mean
    // would absorb scheduler preemptions and whatever else shares the
    // machine. Allocations *are* deterministic per call, so those are
    // averaged over every timed iteration.
    let batches = MIN_OF_BATCHES;
    let per_batch = (iters / batches).max(1);
    let allocs0 = alloc_count();
    let mut best_ns = f64::INFINITY;
    for _ in 0..batches {
        let t0 = Instant::now();
        pump(per_batch);
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(per_batch);
        best_ns = best_ns.min(ns);
    }
    let allocs = alloc_count() - allocs0;
    fabric.shutdown();
    Scenario {
        links,
        payload,
        idle_sources,
        workers: 0,
        ns_per_rsr: best_ns,
        allocs_per_rsr: allocs as f64 / f64::from(batches * per_batch),
    }
}

/// How many receiver contexts the many-link worker sweep spreads its
/// links across. The queue modules register one shared inbox per context,
/// so contexts — not endpoints — are the unit of sharding: 64 sources
/// give a worker pool real parallelism to divide while a single context
/// would serialize every delivery through one slot.
const SWEEP_RX_CONTEXTS: usize = 64;

/// Runs one many-link worker-sweep scenario: a sender context multicasts
/// to `links` endpoints spread over [`SWEEP_RX_CONTEXTS`] receiver
/// contexts, all of whose readiness-armed sources are adopted by ONE
/// shared `WorkerPool` of `workers` threads (`workers = 0` keeps
/// deliveries inline: the caller round-robins `progress()` over the
/// receivers). The reported ns/RSR covers the full fan-out: one `rsr`
/// call plus delivery+dispatch of every link's copy.
fn run_many_link_scenario(
    links: usize,
    workers: usize,
    iters: u32,
    warmup: u32,
    alloc_count: &dyn Fn() -> u64,
) -> Scenario {
    use nexus_rt::shard::WorkerPool;

    let payload = 16_usize;
    let fabric = Fabric::new();
    register_queue_modules(&fabric);
    let tx = fabric.create_context().expect("create sender context");
    let received = Arc::new(AtomicU64::new(0));
    // Completion doorbell for the worker rows: the caller blocks here
    // instead of spinning, so it never competes with the workers for
    // cores (decisive on small machines). `target` is the delivery count
    // the caller is currently waiting for.
    let target = Arc::new(AtomicU64::new(u64::MAX));
    let done = Arc::new((std::sync::Mutex::new(()), std::sync::Condvar::new()));
    let rx_count = links.min(SWEEP_RX_CONTEXTS);
    let mut rxs = Vec::with_capacity(rx_count);
    let mut sp = None;
    for i in 0..rx_count {
        let ctx = fabric.create_context().expect("create receiver context");
        let r = Arc::clone(&received);
        let t = Arc::clone(&target);
        let d = Arc::clone(&done);
        ctx.register_handler("bench", move |_| {
            let n = r.fetch_add(1, Ordering::AcqRel) + 1;
            if n >= t.load(Ordering::Acquire) {
                let (lock, cv) = &*d;
                let _guard = lock.lock().unwrap_or_else(|p| p.into_inner());
                cv.notify_one();
            }
        });
        // Receiver i owns links/rx_count endpoints (the remainder goes to
        // the early contexts), all merged into one multicast startpoint.
        // Startpoints are bound by the endpoint's owner; any context may
        // then send through them.
        let eps = links / rx_count + usize::from(i < links % rx_count);
        for _ in 0..eps {
            let s = ctx
                .startpoint_to(ctx.create_endpoint())
                .expect("bind sweep endpoint");
            match &mut sp {
                None => sp = Some(s),
                Some(acc) => acc.merge(&s),
            }
        }
        rxs.push(ctx);
    }
    let sp = sp.expect("at least one link");
    // Cross-context in-process traffic rides the shmem queue (`local` is
    // same-context only); pin it so selection noise can't shift rows.
    sp.set_method(MethodId::SHMEM);

    let pool = if workers > 0 {
        let pool = WorkerPool::new(workers);
        let mut adopted = 0;
        for ctx in &rxs {
            adopted += pool.adopt(ctx);
        }
        assert!(
            adopted >= rx_count,
            "pool adopted {adopted} sources across {rx_count} receiver contexts"
        );
        Some(pool)
    } else {
        None
    };

    let data = Bytes::from(vec![0x5a_u8; payload]);
    let mut expected = 0_u64;
    let mut pump = |n: u32| {
        // The batch is pipelined: every call is issued before the drain
        // wait, keeping the service side saturated. An isolated rsr on an
        // idle pool would only measure park/unpark latency; a sharded
        // engine's job is sustained service rate under many-link load,
        // and ns/RSR here is that amortized cost.
        // While the batch is in flight the completion target is parked at
        // MAX so in-flight deliveries never take the notify lock; it is
        // lowered to the real count only once the caller starts waiting.
        target.store(u64::MAX, Ordering::Release);
        for _ in 0..n {
            tx.rsr(&sp, "bench", Buffer::from_bytes(data.clone()))
                .expect("rsr");
            expected += links as u64;
        }
        if workers > 0 {
            // Deliveries run on the shard workers; block until the
            // fan-out drains (timeout-bounded: a notify racing the
            // park costs one period — and a batch fully drained before
            // the store below never notifies at all, which the
            // pre-check of `received` before each wait absorbs).
            target.store(expected, Ordering::Release);
            let (lock, cv) = &*done;
            while received.load(Ordering::Acquire) < expected {
                let guard = lock.lock().unwrap_or_else(|p| p.into_inner());
                if received.load(Ordering::Acquire) >= expected {
                    break;
                }
                let _unused = cv
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .unwrap_or_else(|p| p.into_inner());
            }
        } else {
            while received.load(Ordering::Relaxed) < expected {
                for ctx in &rxs {
                    ctx.progress().expect("progress");
                }
            }
        }
    };
    pump(warmup);
    let batches = MIN_OF_BATCHES;
    let per_batch = (iters / batches).max(1);
    let allocs0 = alloc_count();
    let mut best_ns = f64::INFINITY;
    for _ in 0..batches {
        let t0 = Instant::now();
        pump(per_batch);
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(per_batch);
        best_ns = best_ns.min(ns);
    }
    let allocs = alloc_count() - allocs0;
    if let Some(pool) = pool {
        if std::env::var_os("RSRPATH_SHARD_STATS").is_some() {
            eprintln!("workers={workers} shard_stats={:?}", pool.shard_stats());
        }
        pool.shutdown();
    }
    fabric.shutdown();
    Scenario {
        links,
        payload,
        idle_sources: 0,
        workers,
        ns_per_rsr: best_ns,
        allocs_per_rsr: allocs as f64 / f64::from(batches * per_batch),
    }
}

/// Runs the whole scenario matrix, then the idle-source sweep (links=1,
/// payload=16, growing counts of silent readiness-armed sources), then
/// the many-link worker sweep (payload 16, shard workers draining the
/// fan-out).
pub fn run(cfg: &Config, alloc_count: &dyn Fn() -> u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for &links in &cfg.link_counts {
        for &payload in &cfg.payloads {
            out.push(run_scenario(
                links,
                payload,
                0,
                cfg.iters_for(payload),
                cfg.warmup,
                alloc_count,
            ));
        }
    }
    for &idle in &cfg.idle_sweep {
        out.push(run_scenario(
            1,
            16,
            idle,
            cfg.iters_for(16),
            cfg.warmup,
            alloc_count,
        ));
    }
    for &(links, workers) in &cfg.worker_sweep {
        out.push(run_many_link_scenario(
            links,
            workers,
            cfg.worker_iters,
            (cfg.worker_iters / 4).max(8),
            alloc_count,
        ));
    }
    out
}

/// Formats the scenario table.
pub fn format(rows: &[Scenario]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|s| {
            vec![
                s.links.to_string(),
                s.payload.to_string(),
                s.idle_sources.to_string(),
                s.workers.to_string(),
                format!("{:.0}", s.ns_per_rsr),
                format!("{:.1}", s.allocs_per_rsr),
            ]
        })
        .collect();
    format!(
        "local-queue RSR round trip (send + poll + dispatch), per rsr() call\n{}",
        report::table(
            &[
                "links",
                "payload B",
                "idle srcs",
                "workers",
                "ns/RSR",
                "allocs/RSR"
            ],
            &body
        )
    )
}

/// Serializes scenarios as a JSON array (stable field order).
pub fn results_json(rows: &[Scenario]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|s| {
            format!(
                "    {{\"links\": {}, \"payload\": {}, \"idle_sources\": {}, \"workers\": {}, \"ns_per_rsr\": {:.1}, \"allocs_per_rsr\": {:.1}}}",
                s.links, s.payload, s.idle_sources, s.workers, s.ns_per_rsr, s.allocs_per_rsr
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// The document the `rsrpath` binary writes: current results plus, when
/// a tracked baseline was given, the baseline's before/after history.
pub fn document_json(rows: &[Scenario]) -> String {
    format!(
        "{{\n  \"schema\": \"nexus-rsrpath-v1\",\n  \"results\": {}\n}}\n",
        results_json(rows)
    )
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the tracked baseline file
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset `BENCH_rsr.json` uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number.
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document (objects, arrays, strings without exotic
/// escapes, numbers, booleans, null — the subset our tracked files use).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut m = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {}", *pos)),
                };
                expect(b, pos, b':')?;
                m.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut a = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(a));
            }
            loop {
                a.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(a));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let start = *pos;
            while *pos < b.len() && b[*pos] != b'"' {
                if b[*pos] == b'\\' {
                    return Err(format!("escapes unsupported at byte {}", *pos));
                }
                *pos += 1;
            }
            if *pos >= b.len() {
                return Err("unterminated string".to_owned());
            }
            let s = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| "invalid UTF-8 in string".to_owned())?
                .to_owned();
            *pos += 1;
            Ok(Json::Str(s))
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_owned())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
        None => Err("unexpected end of input".to_owned()),
    }
}

/// Extracts the scenario array under `key` from a tracked document.
pub fn scenarios_from(doc: &Json, key: &str) -> Option<Vec<Scenario>> {
    let arr = match doc.get(key)? {
        Json::Arr(a) => a,
        _ => return None,
    };
    let mut out = Vec::new();
    for item in arr {
        out.push(Scenario {
            links: item.get("links")?.num()? as usize,
            payload: item.get("payload")?.num()? as usize,
            // Absent in documents written before the idle-source sweep.
            idle_sources: item.get("idle_sources").and_then(Json::num).unwrap_or(0.0) as usize,
            // Absent in documents written before the worker sweep.
            workers: item.get("workers").and_then(Json::num).unwrap_or(0.0) as usize,
            ns_per_rsr: item.get("ns_per_rsr")?.num()?,
            allocs_per_rsr: item.get("allocs_per_rsr")?.num()?,
        });
    }
    Some(out)
}

/// Compares `current` against a tracked baseline ("after" block of
/// `BENCH_rsr.json`). Returns one message per regression: ns/RSR more than
/// `ns_tolerance` (e.g. 0.25 = +25 %) above baseline, or allocs/RSR
/// meaningfully above the pinned budget. Scenarios absent from the
/// baseline are ignored (new rows are not regressions).
pub fn check(current: &[Scenario], baseline: &[Scenario], ns_tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        let ns_limit = base.ns_per_rsr * (1.0 + ns_tolerance);
        if cur.ns_per_rsr > ns_limit {
            failures.push(format!(
                "links={} payload={} idle={} workers={}: ns/RSR {:.0} exceeds baseline {:.0} by \
                 more than {:.0} % (limit {:.0})",
                cur.links,
                cur.payload,
                cur.idle_sources,
                cur.workers,
                cur.ns_per_rsr,
                base.ns_per_rsr,
                ns_tolerance * 100.0,
                ns_limit
            ));
        }
        // Allocation counts are near-deterministic; allow slack for the
        // handful of amortized container growths outside the steady state.
        let alloc_limit = base.allocs_per_rsr * 1.25 + 2.0;
        if cur.allocs_per_rsr > alloc_limit {
            failures.push(format!(
                "links={} payload={} idle={} workers={}: allocs/RSR {:.1} exceeds baseline {:.1} \
                 (limit {:.1})",
                cur.links,
                cur.payload,
                cur.idle_sources,
                cur.workers,
                cur.allocs_per_rsr,
                base.allocs_per_rsr,
                alloc_limit
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(links: usize, payload: usize, ns: f64, allocs: f64) -> Scenario {
        Scenario {
            links,
            payload,
            idle_sources: 0,
            workers: 0,
            ns_per_rsr: ns,
            allocs_per_rsr: allocs,
        }
    }

    #[test]
    fn smoke_run_produces_full_matrix() {
        let cfg = Config {
            iters: 50,
            warmup: 10,
            payloads: vec![16, 4096],
            link_counts: vec![1, 4],
            idle_sweep: vec![8],
            worker_sweep: vec![(16, 0), (16, 2)],
            worker_iters: 16,
        };
        let rows = run(&cfg, &|| 0);
        assert_eq!(
            rows.len(),
            7,
            "2x2 matrix + one idle-sweep row + two worker rows"
        );
        assert!(rows.iter().all(|r| r.ns_per_rsr > 0.0));
        let sweep = &rows[4];
        assert_eq!((sweep.links, sweep.payload, sweep.idle_sources), (1, 16, 8));
        let sharded = rows.last().unwrap();
        assert_eq!((sharded.links, sharded.workers), (16, 2));
        let t = format(&rows);
        assert!(t.contains("ns/RSR"));
        assert!(t.contains("idle srcs"));
        assert!(t.contains("workers"));
    }

    #[test]
    fn old_documents_without_idle_sources_parse_as_zero() {
        let doc = "{\"results\": [\n    {\"links\": 1, \"payload\": 16, \
                   \"ns_per_rsr\": 900.0, \"allocs_per_rsr\": 2.0}\n  ]}";
        let parsed = parse_json(doc).unwrap();
        let rows = scenarios_from(&parsed, "results").unwrap();
        assert_eq!(rows[0].idle_sources, 0);
        assert_eq!(rows[0].workers, 0);
    }

    #[test]
    fn json_roundtrip_through_parser() {
        let rows = vec![s(1, 16, 850.0, 12.0), s(8, 4096, 5200.5, 40.0)];
        let doc = document_json(&rows);
        let parsed = parse_json(&doc).unwrap();
        let back = scenarios_from(&parsed, "results").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].links, 1);
        assert_eq!(back[1].payload, 4096);
        assert!((back[1].ns_per_rsr - 5200.5).abs() < 1e-9);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn check_flags_ns_regression_only_beyond_tolerance() {
        let base = vec![s(1, 16, 1000.0, 10.0)];
        assert!(check(&[s(1, 16, 1200.0, 10.0)], &base, 0.25).is_empty());
        let fails = check(&[s(1, 16, 1300.0, 10.0)], &base, 0.25);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("ns/RSR"));
    }

    #[test]
    fn check_flags_alloc_regression_and_ignores_unknown_scenarios() {
        let base = vec![s(1, 16, 1000.0, 4.0)];
        let fails = check(&[s(1, 16, 900.0, 30.0)], &base, 0.25);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("allocs/RSR"));
        assert!(check(&[s(8, 16, 9e9, 9e9)], &base, 0.25).is_empty());
    }
}
