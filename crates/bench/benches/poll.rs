//! Poll-engine microbenchmarks: the unified polling function's per-pass
//! cost as a function of the method mix and skip_poll — the software-side
//! half of §3.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexus_rt::descriptor::MethodId;
use nexus_rt::error::Result;
use nexus_rt::module::CommReceiver;
use nexus_rt::poll::PollEngine;
use nexus_rt::rsr::Rsr;
use std::hint::black_box;

/// An always-empty receiver with a configurable busy-wait cost, standing
/// in for probes of different prices.
struct CostedEmpty {
    cost_ns: u64,
}

impl CommReceiver for CostedEmpty {
    fn poll(&mut self) -> Result<Option<Rsr>> {
        if self.cost_ns > 0 {
            let t = std::time::Instant::now();
            while (t.elapsed().as_nanos() as u64) < self.cost_ns {
                std::hint::spin_loop();
            }
        }
        Ok(None)
    }
}

fn bench_pass_cost_by_source_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("poll/pass_cost_by_sources");
    for n in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut eng = PollEngine::new();
            for i in 0..n {
                eng.add_source(MethodId(i as u16), Box::new(CostedEmpty { cost_ns: 0 }));
            }
            b.iter(|| black_box(eng.poll_once()))
        });
    }
    g.finish();
}

fn bench_skip_poll_amortization(c: &mut Criterion) {
    // A cheap method plus an expensive one (~2 µs busy-wait, a stand-in
    // for select): skip_poll should amortize the expensive probe away.
    let mut g = c.benchmark_group("poll/skip_poll_amortization");
    for skip in [1u64, 10, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(skip), &skip, |b, &skip| {
            let mut eng = PollEngine::new();
            eng.add_source(MethodId::MPL, Box::new(CostedEmpty { cost_ns: 0 }));
            eng.add_source(MethodId::TCP, Box::new(CostedEmpty { cost_ns: 2_000 }));
            eng.set_skip_poll(MethodId::TCP, skip);
            b.iter(|| black_box(eng.poll_once()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pass_cost_by_source_count,
    bench_skip_poll_amortization
);
criterion_main!(benches);
