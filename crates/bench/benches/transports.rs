//! Transport-level microbenchmarks: send+receive cost per module, the raw
//! numbers behind the "fastest first" cost ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_rt::context::{ContextId, ContextInfo, NodeId, PartitionId};
use nexus_rt::endpoint::EndpointId;
use nexus_rt::module::CommModule;
use nexus_rt::rsr::{Rsr, WireFrame};
use nexus_transports::{MplModule, ShmemModule, TcpModule};
use std::hint::black_box;

fn info(id: u32) -> ContextInfo {
    ContextInfo {
        id: ContextId(id),
        node: NodeId(0),
        partition: PartitionId(0),
    }
}

fn msg(size: usize) -> Rsr {
    Rsr::new(
        ContextId(0),
        EndpointId(1),
        "bench",
        bytes::Bytes::from(vec![0u8; size]),
    )
}

fn bench_queue_transports(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport/queue_send_recv");
    let shmem = ShmemModule::new();
    let mpl = MplModule::new();
    let cases: Vec<(&str, &dyn CommModule)> = vec![("shmem", &shmem), ("mpl", &mpl)];
    for (name, module) in cases {
        let (desc, mut rx) = module.open(&info(0)).unwrap();
        let obj = module.connect(&info(1), &desc).unwrap();
        let m = msg(1024);
        g.bench_function(BenchmarkId::new(name, 1024), |b| {
            b.iter(|| {
                obj.send(&m, &WireFrame::new()).unwrap();
                loop {
                    if let Some(got) = rx.poll().unwrap() {
                        break black_box(got);
                    }
                }
            })
        });
    }
    g.finish();
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    let tcp = TcpModule::new();
    let (desc, mut rx) = tcp.open(&info(0)).unwrap();
    let obj = tcp.connect(&info(1), &desc).unwrap();
    let mut g = c.benchmark_group("transport/tcp_loopback");
    g.sample_size(20);
    for size in [0usize, 16 * 1024] {
        let m = msg(size);
        g.throughput(Throughput::Bytes(m.wire_len() as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                obj.send(&m, &WireFrame::new()).unwrap();
                loop {
                    if let Some(got) = rx.poll().unwrap() {
                        break black_box(got);
                    }
                    std::hint::spin_loop();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queue_transports, bench_tcp_roundtrip);
criterion_main!(benches);
