//! Microbenchmarks of the typed buffer and RSR wire format — the
//! per-message costs behind the Nexus overhead visible in Fig. 4's small
//! message range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_rt::buffer::Buffer;
use nexus_rt::context::ContextId;
use nexus_rt::endpoint::EndpointId;
use nexus_rt::rsr::Rsr;
use std::hint::black_box;

fn bench_scalars(c: &mut Criterion) {
    c.bench_function("buffer/put_get_scalars", |b| {
        b.iter(|| {
            let mut buf = Buffer::with_capacity(64);
            buf.put_u32(black_box(7));
            buf.put_u64(black_box(11));
            buf.put_f64(black_box(2.5));
            buf.put_bool(true);
            let a = buf.get_u32().unwrap();
            let bb = buf.get_u64().unwrap();
            let cc = buf.get_f64().unwrap();
            let d = buf.get_bool().unwrap();
            black_box((a, bb, cc, d))
        })
    });
}

fn bench_f64_slices(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer/f64_slice_roundtrip");
    for n in [16usize, 256, 4096] {
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut buf = Buffer::with_capacity(data.len() * 8 + 4);
                buf.put_f64_slice(black_box(data));
                black_box(buf.get_f64_slice().unwrap())
            })
        });
    }
    g.finish();
}

fn bench_rsr_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsr/encode_decode");
    for n in [0usize, 1024, 65_536] {
        let msg = Rsr::new(
            ContextId(3),
            EndpointId(9),
            "halo_exchange",
            bytes::Bytes::from(vec![0u8; n]),
        );
        g.throughput(Throughput::Bytes(msg.wire_len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &msg, |b, msg| {
            b.iter(|| {
                let frame = msg.encode();
                black_box(Rsr::decode(&frame).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scalars, bench_f64_slices, bench_rsr_codec);
criterion_main!(benches);
