//! Application-kernel microbenchmarks: the compute/communication building
//! blocks of the two proxy applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_climate::coupled::{atm_params, serial_coupled, CoupledConfig};
use nexus_climate::grid::{step, wrap_halos, Grid};
use nexus_nbody::*;
use std::hint::black_box;

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("climate/stencil_step");
    for n in [32usize, 128] {
        let mut grid = Grid::new(n, n, 0, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
        wrap_halos(&mut grid);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(step(&grid, atm_params(), None)))
        });
    }
    g.finish();
}

fn bench_coupled_period(c: &mut Criterion) {
    c.bench_function("climate/serial_coupled_4_periods", |b| {
        b.iter(|| black_box(serial_coupled(CoupledConfig::small())))
    });
}

fn bench_nbody_forces(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbody/all_pairs_forces");
    for n in [64usize, 256] {
        let bodies = colliding_clusters(n);
        let params = NbodyParams::default();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(nexus_nbody::model::accel_from_blocks(
                    &params,
                    &bodies,
                    &[&bodies],
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stencil,
    bench_coupled_period,
    bench_nbody_forces
);
criterion_main!(benches);
