//! Microbenchmarks of descriptor tables, startpoint mobility, and method
//! selection — the per-link costs of the multimethod architecture (§3.1's
//! "rather heavyweight entities" discussion and the lightweight-startpoint
//! optimization).

use criterion::{criterion_group, criterion_main, Criterion};
use nexus_rt::buffer::Buffer;
use nexus_rt::context::Fabric;
use nexus_rt::descriptor::{CommDescriptor, DescriptorTable, MethodId};
use nexus_rt::module::test_support::TestModule;
use nexus_rt::selection::{FirstApplicable, SelectionPolicy};
use std::hint::black_box;
use std::sync::Arc;

fn sample_table() -> DescriptorTable {
    [
        CommDescriptor::new(MethodId::SHMEM, b"node:0".to_vec()),
        CommDescriptor::new(MethodId::MPL, b"sess:1,node:0".to_vec()),
        CommDescriptor::new(MethodId::TCP, b"127.0.0.1:7000".to_vec()),
        CommDescriptor::new(MethodId::UDP, b"127.0.0.1:7001".to_vec()),
    ]
    .into_iter()
    .collect()
}

fn bench_table_codec(c: &mut Criterion) {
    let table = sample_table();
    c.bench_function("descriptor/table_encode_decode", |b| {
        b.iter(|| {
            let mut buf = Buffer::with_capacity(table.wire_len());
            table.encode(&mut buf);
            black_box(DescriptorTable::decode(&mut buf).unwrap())
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    // A fabric with partition-scoped and universal test modules.
    let fabric = Fabric::new();
    fabric
        .registry()
        .register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, true)));
    fabric
        .registry()
        .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
    let remote = fabric.create_context().unwrap();
    let local = fabric.create_context().unwrap();
    let table = remote.descriptor_table().clone();
    let info = local.info();
    let registry = local.registry().unwrap();
    c.bench_function("selection/first_applicable", |b| {
        b.iter(|| black_box(FirstApplicable.select(&info, &table, &registry)))
    });
}

fn bench_startpoint_mobility(c: &mut Criterion) {
    let fabric = Fabric::new();
    fabric
        .registry()
        .register(Arc::new(TestModule::new(MethodId::MPL, "mpl", 10, false)));
    fabric
        .registry()
        .register(Arc::new(TestModule::new(MethodId::TCP, "tcp", 30, false)));
    let target = fabric.create_context().unwrap();
    let receiver = fabric.create_context().unwrap();
    let ep = target.create_endpoint();
    let heavy = target.startpoint_to(ep).unwrap();
    let light = target.startpoint_to_lightweight(ep).unwrap();
    c.bench_function("startpoint/pack_unpack_heavyweight", |b| {
        b.iter(|| {
            let mut buf = Buffer::with_capacity(heavy.wire_len());
            heavy.pack(&mut buf);
            black_box(nexus_rt::startpoint::Startpoint::unpack(&mut buf, &receiver).unwrap())
        })
    });
    c.bench_function("startpoint/pack_unpack_lightweight", |b| {
        b.iter(|| {
            let mut buf = Buffer::with_capacity(light.wire_len());
            light.pack(&mut buf);
            black_box(nexus_rt::startpoint::Startpoint::unpack(&mut buf, &receiver).unwrap())
        })
    });
    c.bench_function("startpoint/clone_mirrors_links", |b| {
        b.iter(|| black_box(heavy.clone()))
    });
}

criterion_group!(
    benches,
    bench_table_codec,
    bench_selection,
    bench_startpoint_mobility
);
criterion_main!(benches);
