//! End-to-end RSR cost on the real runtime: issue + progress + dispatch
//! through the in-process queue transports — the ablation behind Fig. 4's
//! "Nexus overhead" gap at small message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nexus_rt::buffer::Buffer;
use nexus_rt::context::Fabric;
use nexus_transports::register_queue_modules;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_rsr_roundtrip(c: &mut Criterion) {
    let fabric = Fabric::new();
    register_queue_modules(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    let count = Arc::new(AtomicU64::new(0));
    {
        let cnt = Arc::clone(&count);
        b.register_handler("sink", move |_| {
            cnt.fetch_add(1, Ordering::Relaxed);
        });
    }
    let ep = b.create_endpoint();
    let sp = b.startpoint_to(ep).unwrap();

    let mut g = c.benchmark_group("rsr/one_way_queue_transport");
    for size in [0usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |bch, &size| {
            let payload = vec![0u8; size];
            bch.iter(|| {
                let mut buf = Buffer::with_capacity(size);
                buf.put_raw(black_box(&payload));
                a.rsr(&sp, "sink", buf).unwrap();
                // Drive the receiving context until the handler ran.
                let before = count.load(Ordering::Relaxed);
                while count.load(Ordering::Relaxed) == before {
                    b.progress().unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_selection_amortization(c: &mut Criterion) {
    // First RSR on a fresh startpoint pays selection + connect; subsequent
    // ones ride the cached communication object. Measure both.
    let fabric = Fabric::new();
    register_queue_modules(&fabric);
    let a = fabric.create_context().unwrap();
    let b = fabric.create_context().unwrap();
    b.register_handler("sink", |_| {});
    let ep = b.create_endpoint();

    c.bench_function("rsr/first_send_includes_selection", |bch| {
        bch.iter_batched(
            || b.startpoint_to(ep).unwrap(),
            |sp| {
                a.rsr(&sp, "sink", Buffer::new()).unwrap();
                black_box(sp)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let warm = b.startpoint_to(ep).unwrap();
    a.rsr(&warm, "sink", Buffer::new()).unwrap();
    c.bench_function("rsr/cached_send", |bch| {
        bch.iter(|| a.rsr(&warm, "sink", Buffer::new()).unwrap())
    });
    // Keep the receiving side drained so queues stay short.
    while b.progress().unwrap() > 0 {}
}

criterion_group!(benches, bench_rsr_roundtrip, bench_selection_amortization);
criterion_main!(benches);
