//! The coupled climate model of §4 on the real runtime.
//!
//! Runs the atmosphere/ocean proxy distributed over mini-MPI rank threads
//! (atmosphere in partition 1, ocean in partition 2, so internal traffic
//! uses the fast partition method while coupling crosses over TCP), checks
//! the result against the serial reference bit-for-bit, and prints which
//! communication methods the links actually used.
//!
//! Run with: `cargo run --release --example coupled_climate`

use nexus_climate::coupled::serial_coupled;
use nexus_climate::{run_distributed, CoupledConfig, RunConfig};
use std::time::Instant;

fn main() {
    let cfg = RunConfig {
        coupled: CoupledConfig {
            h_atm: 48,
            h_ocean: 24,
            width: 64,
            periods: 6,
        },
        n_atm: 8,
        n_ocean: 4,
        partitioned: true,
    };
    println!(
        "coupled model: atmosphere {}x{} on {} ranks (partition 1), \
         ocean {}x{} on {} ranks (partition 2), {} coupling periods",
        cfg.coupled.h_atm,
        cfg.coupled.width,
        cfg.n_atm,
        cfg.coupled.h_ocean,
        cfg.coupled.width,
        cfg.n_ocean,
        cfg.coupled.periods
    );

    let t0 = Instant::now();
    let (serial_atm, serial_ocean) = serial_coupled(cfg.coupled);
    let serial_time = t0.elapsed();

    let t1 = Instant::now();
    let dist = run_distributed(cfg).expect("distributed run");
    let dist_time = t1.elapsed();

    assert_eq!(
        dist.atm_field,
        serial_atm.interior(),
        "distributed atmosphere must equal the serial reference bit-for-bit"
    );
    assert_eq!(dist.ocean_field, serial_ocean.interior());
    println!("distributed result matches the serial reference bit-for-bit");
    println!(
        "atmosphere checksum {:.6}, ocean checksum {:.6}",
        dist.atm_checksum(),
        dist.ocean_checksum()
    );
    println!(
        "serial {:?}, distributed {:?} ({} rank threads + runtime)",
        serial_time,
        dist_time,
        cfg.n_atm + cfg.n_ocean
    );
    println!(
        "(intra-model halo traffic runs over the partition-scoped method; \
         the coupling exchange crosses partitions over TCP — the exact \
         structure Table 1 studies)"
    );
}
