//! Metacomputing across OS processes: one logical system, two programs.
//!
//! The parent process plays the "supercomputer site": a context with a
//! `solve` service. It packs a startpoint to that service into hex bytes
//! and launches a child process (this same binary with `worker` as an
//! argument), handing the startpoint over through the environment — the
//! same way I-WAY components exchanged contact information out of band.
//! The child builds its *own* fabric (disjoint context-id range, different
//! node/partition ids: it really is elsewhere), reconstructs the
//! startpoint, and issues RSRs: automatic selection discovers that the
//! only applicable method across the process boundary is TCP, and the
//! request crosses a real socket.
//!
//! Run with: `cargo run --example two_process`

use nexus_rt::prelude::*;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn parent() -> Result<()> {
    let fabric = Fabric::with_id_base(0);
    register_defaults(&fabric);
    let site = fabric.create_context_at(NodeId(0), PartitionId(1))?;

    let served = Arc::new(AtomicU32::new(0));
    {
        let served = Arc::clone(&served);
        site.register_handler("solve", move |args| {
            let reply_sp = Startpoint::unpack_standalone(args.buffer)
                .expect("request carries a reply startpoint");
            let x = args.buffer.get_f64().unwrap();
            println!("[parent] solve({x}) over {:?}", "tcp");
            let mut out = Buffer::new();
            out.put_f64(x.sqrt());
            args.context.rsr(&reply_sp, "solution", out).unwrap();
            served.fetch_add(1, Ordering::Relaxed);
        });
    }
    let ep = site.create_endpoint();
    let sp = site.startpoint_to(ep)?;
    let mut packed = Buffer::new();
    sp.pack(&mut packed);
    let hex = to_hex(packed.as_slice());
    println!(
        "[parent] exported startpoint: {} bytes, methods {:?}",
        packed.len(),
        sp.links()[0].table().methods()
    );

    // Launch the worker: same binary, `worker` argument, startpoint in env.
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("worker")
        .env("NEXUS_STARTPOINT_HEX", hex)
        .spawn()
        .expect("spawn worker process");

    // Serve until the worker has been answered (3 requests), then reap it.
    let ok = site.progress_until(
        || served.load(Ordering::Relaxed) == 3,
        Duration::from_secs(30),
    );
    assert!(ok, "worker requests must arrive over TCP");
    let status = child.wait().expect("child exit");
    assert!(status.success(), "worker exited cleanly");
    println!("[parent] served 3 requests from another OS process");
    fabric.shutdown();
    Ok(())
}

fn worker() -> Result<()> {
    // A different "site": disjoint context ids, different placement — so
    // in-process methods are (correctly) inapplicable and TCP is selected.
    let fabric = Fabric::with_id_base(1_000);
    register_defaults(&fabric);
    let me = fabric.create_context_at(NodeId(1_000), PartitionId(2))?;

    let hex = std::env::var("NEXUS_STARTPOINT_HEX").expect("startpoint from parent");
    let mut buf = Buffer::new();
    buf.put_raw(&from_hex(&hex));
    let solver = Startpoint::unpack_standalone(&mut buf)?;
    println!(
        "[worker] imported startpoint; applicable methods here: {:?}",
        me.applicable_methods(&solver)?
    );

    let answers = Arc::new(parking_lot::Mutex::new(Vec::new()));
    {
        let answers = Arc::clone(&answers);
        me.register_handler("solution", move |args| {
            answers.lock().push(args.buffer.get_f64().unwrap());
        });
    }
    let reply_ep = me.create_endpoint();
    let reply_sp = me.startpoint_to(reply_ep)?;

    for x in [4.0f64, 9.0, 144.0] {
        let mut req = Buffer::new();
        reply_sp.pack(&mut req);
        req.put_f64(x);
        me.rsr(&solver, "solve", req)?;
    }
    assert_eq!(
        solver.current_methods()[0].1,
        Some(MethodId::TCP),
        "cross-process traffic must ride TCP"
    );
    let ok = me.progress_until(|| answers.lock().len() == 3, Duration::from_secs(30));
    assert!(ok, "solutions must come back");
    let got = answers.lock().clone();
    assert_eq!(got, vec![2.0, 3.0, 12.0]);
    println!("[worker] sqrt answers from the other process: {got:?}");
    fabric.shutdown();
    Ok(())
}

fn main() -> Result<()> {
    if std::env::args().nth(1).as_deref() == Some("worker") {
        worker()
    } else {
        parent()
    }
}
