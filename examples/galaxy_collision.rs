//! Galaxies collide (the I-WAY application class the paper cites).
//!
//! Two star clusters fall into each other under self-gravity, computed
//! with the systolic ring pipeline over mini-MPI — here with the ring
//! split across two partitions, so half the hops ride the fast partition
//! method and half cross "the wide area" over TCP, multimethod style.
//!
//! Run with: `cargo run --release --example galaxy_collision`

use nexus_nbody::{colliding_clusters, run_distributed, total_energy, NbodyParams, RunConfig};
use std::time::Instant;

fn main() {
    let params = NbodyParams::default();
    let cfg = RunConfig {
        n: 64,
        ranks: 4,
        steps: 40,
        partitioned: true,
    };
    println!(
        "galaxy collision: {} bodies, {} ranks across 2 partitions, {} steps",
        cfg.n, cfg.ranks, cfg.steps
    );
    let initial = colliding_clusters(cfg.n);
    let e0 = total_energy(&params, &initial);

    let t0 = Instant::now();
    let final_bodies = run_distributed(cfg, params).expect("distributed run");
    let wall = t0.elapsed();

    let e1 = total_energy(&params, &final_bodies);
    // Separation of the two cluster centroids along the collision axis.
    let centroid = |stride_off: usize| -> f64 {
        let xs: Vec<f64> = final_bodies
            .iter()
            .skip(stride_off)
            .step_by(2)
            .map(|b| b.pos[0])
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let sep_before = 2.0;
    let sep_after = (centroid(1) - centroid(0)).abs();
    println!("centroid separation: {sep_before:.2} -> {sep_after:.2} (they fell together)");
    println!(
        "energy drift over the run: {:.3}% (leapfrog is symplectic)",
        ((e1 - e0) / e0).abs() * 100.0
    );
    println!(
        "{} ring stages x {} steps x 2 force evaluations in {:?}",
        cfg.ranks - 1,
        cfg.steps,
        wall
    );
    assert!(sep_after < sep_before);
}
