//! Site-boundary security (§2): "control information might be encrypted
//! outside a site, but not within, while data is not encrypted in either
//! case" — security as a per-link method choice.
//!
//! Two "sites" (partitions). Control traffic between sites goes over a
//! cipher+checksum-wrapped TCP method; control traffic *within* a site
//! uses the plain fast path; bulk data is plain everywhere. No application
//! logic changes per destination — the descriptor tables and one policy
//! tweak do all the work.
//!
//! Run with: `cargo run --example site_security`

use nexus_rt::prelude::*;
use nexus_transports::{register_defaults, Chain, Checksum, TcpModule, WrapModule, XorCipher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The wrapped method's id (custom range).
const SECURE_TCP: MethodId = MethodId(0x100);

fn main() -> Result<()> {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    // A "secure TCP": cipher + integrity check over a private TCP module.
    // Ranked after mpl but before plain tcp, so automatic selection uses
    // it exactly when the fast intra-site methods do not apply — i.e. for
    // cross-site traffic.
    fabric.registry().register(Arc::new(WrapModule::new(
        SECURE_TCP,
        "secure-tcp",
        20,
        Arc::new(TcpModule::new()),
        Arc::new(Chain::new(vec![
            Box::new(XorCipher::new(0xC0FFEE)),
            Box::new(Checksum),
        ])),
    )));
    // Site A: two contexts; Site B: one context.
    let a1 = fabric.create_context_at(NodeId(0), PartitionId(1))?;
    let a2 = fabric.create_context_at(NodeId(0), PartitionId(1))?;
    let b1 = fabric.create_context_at(NodeId(10), PartitionId(2))?;

    let seen = Arc::new(AtomicU32::new(0));
    for ctx in [&a2, &b1] {
        let s = Arc::clone(&seen);
        let id = ctx.id();
        ctx.register_handler("control", move |args| {
            let cmd = args.buffer.get_str().unwrap();
            println!("[ctx {id}] control: {cmd:?}");
            s.fetch_add(1, Ordering::Relaxed);
        });
    }
    let ep_a2 = a2.create_endpoint();
    let sp_intra = a2.startpoint_to(ep_a2)?; // within site A
    let ep_b1 = b1.create_endpoint();
    let sp_inter = b1.startpoint_to(ep_b1)?; // crosses the site boundary

    println!(
        "b1 advertises (fastest first): {:?}",
        b1.descriptor_table().methods()
    );

    let mut msg1 = Buffer::new();
    msg1.put_str("rebalance load");
    a1.rsr(&sp_intra, "control", msg1)?;

    let mut msg2 = Buffer::new();
    msg2.put_str("open data channel");
    a1.rsr(&sp_inter, "control", msg2)?;

    let _g2 = a2.spawn_progress_thread();
    let _g3 = b1.spawn_progress_thread();
    let ok = a1.progress_until(
        || seen.load(Ordering::Relaxed) == 2,
        Duration::from_secs(10),
    );
    assert!(ok);

    let intra = sp_intra.current_methods()[0].1.unwrap();
    let inter = sp_inter.current_methods()[0].1.unwrap();
    println!("within site A : {intra} (no crypto inside the site)");
    println!("across sites  : {inter} (cipher + integrity at the boundary)");
    assert_eq!(intra, MethodId::SHMEM);
    assert_eq!(inter, SECURE_TCP);
    assert_eq!(b1.stats().snapshot_method(SECURE_TCP).recvs, 1);
    fabric.shutdown();
    Ok(())
}
