//! A collaborative-environment sketch (§1/§2): one application, three
//! kinds of traffic, three methods — simultaneously.
//!
//! A "presenter" context shares state with several "viewer" contexts:
//!
//! * **control messages** go over the reliable fast path, multicast by
//!   binding one startpoint to every viewer's endpoint (the paper's
//!   multicast: an RSR on a multi-bound startpoint reaches every linked
//!   endpoint);
//! * **bulk scene data** is pinned to TCP (manual selection — say, to keep
//!   the fast path free for control);
//! * **video frames** go over lossy UDP: stale frames are worthless, so
//!   retransmission would be wrong; we inject 20 % loss and watch the
//!   application shrug it off.
//!
//! Run with: `cargo run --example collaborative`

use nexus_rt::prelude::*;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let fabric = Fabric::new();
    register_defaults(&fabric);
    // Make the video path lossy (deterministically).
    let udp = fabric
        .registry()
        .get(MethodId::UDP)
        .expect("udp registered");
    udp.set_param("seed", "42")?;
    udp.set_param("loss", "0.2")?;

    let presenter = fabric.create_context_at(NodeId(0), PartitionId(0))?;
    let viewers: Vec<_> = (1..=3u32)
        .map(|n| fabric.create_context_at(NodeId(n), PartitionId(0)).unwrap())
        .collect();

    let control_seen = Arc::new(AtomicU32::new(0));
    let scene_bytes = Arc::new(AtomicU32::new(0));
    let frames_seen = Arc::new(AtomicU32::new(0));

    // Each viewer: one endpoint per traffic class.
    let mut control_sp = Startpoint::unbound();
    let mut scene_sps = Vec::new();
    let mut video_sps = Vec::new();
    for v in &viewers {
        let id = v.id();
        {
            let seen = Arc::clone(&control_seen);
            v.register_handler("control", move |args| {
                let cmd = args.buffer.get_str().unwrap();
                println!("[viewer {id}] control: {cmd}");
                seen.fetch_add(1, Ordering::Relaxed);
            });
            let bytes = Arc::clone(&scene_bytes);
            v.register_handler("scene", move |args| {
                bytes.fetch_add(args.buffer.remaining() as u32, Ordering::Relaxed);
            });
            let frames = Arc::clone(&frames_seen);
            v.register_handler("frame", move |_| {
                frames.fetch_add(1, Ordering::Relaxed);
            });
        }
        let ep_control = v.create_endpoint();
        control_sp.merge(&v.startpoint_to(ep_control)?); // multicast link
        let ep_scene = v.create_endpoint();
        scene_sps.push(v.startpoint_to(ep_scene)?);
        let ep_video = v.create_endpoint();
        video_sps.push(v.startpoint_to(ep_video)?);
    }

    // Manual selection per traffic class.
    for sp in &scene_sps {
        sp.set_method(MethodId::TCP);
    }
    for sp in &video_sps {
        sp.set_method(MethodId::UDP);
    }

    // One control multicast, one scene blob each, a burst of video frames.
    let mut cmd = Buffer::new();
    cmd.put_str("begin session");
    presenter.rsr(&control_sp, "control", cmd)?;

    for sp in &scene_sps {
        let mut blob = Buffer::new();
        blob.put_raw(&vec![7u8; 100_000]);
        presenter.rsr(sp, "scene", blob)?;
    }
    const FRAMES: u32 = 50;
    for i in 0..FRAMES {
        for sp in &video_sps {
            let mut frame = Buffer::new();
            frame.put_u32(i);
            frame.put_raw(&vec![0u8; 8_000]);
            presenter.rsr(sp, "frame", frame)?;
        }
        // Viewers keep draining while the stream plays (otherwise kernel
        // socket buffers overflow and *real* UDP drops pile on top of the
        // injected ones).
        for v in &viewers {
            let _ = v.progress();
        }
    }

    // Drive the viewers until control + scene are in and the video burst
    // has drained (minus whatever the lossy channel ate).
    let ok = presenter.progress_until(
        || {
            for v in &viewers {
                let _ = v.progress();
            }
            control_seen.load(Ordering::Relaxed) == 3
                && scene_bytes.load(Ordering::Relaxed) == 300_000
        },
        Duration::from_secs(10),
    );
    assert!(ok, "reliable traffic must all arrive");
    std::thread::sleep(Duration::from_millis(100));
    for v in &viewers {
        let _ = v.progress();
    }

    let got = frames_seen.load(Ordering::Relaxed);
    let sent = FRAMES * viewers.len() as u32;
    println!("\ncontrol messages: 3/3 (multicast over the fast path)");
    println!("scene data: 300000/300000 bytes (pinned to TCP)");
    println!(
        "video frames: {got}/{sent} arrived over lossy UDP ({} dropped by injection) — \
         and nobody waited for the missing ones",
        sent - got
    );
    assert!(got < sent, "with 20% injected loss some frames must vanish");
    assert!(got > sent / 2, "most frames still arrive");

    // Each viewer link used a different method per class — one application,
    // three methods at once.
    println!(
        "methods in use: control={:?} scene={:?} video={:?}",
        control_sp.current_methods()[0].1.map(|m| m.to_string()),
        scene_sps[0].current_methods()[0].1.map(|m| m.to_string()),
        video_sps[0].current_methods()[0].1.map(|m| m.to_string()),
    );
    fabric.shutdown();
    Ok(())
}
