//! Multimethod selection: the Figure 3 scenario of the paper.
//!
//! Three "nodes": node 0 is a workstation connected only by the universal
//! method (TCP — the paper's Ethernet); nodes 1 and 2 sit in one SP2
//! partition and are additionally connected by MPL. A startpoint to an
//! endpoint on node 2 is used from node 0 (TCP is the only applicable
//! method), then *migrates* to node 1, where automatic selection discovers
//! that MPL is applicable and switches — no application bookkeeping. Then
//! we steer the choice manually and read everything back through the
//! enquiry functions, including a resource-database configuration.
//!
//! Run with: `cargo run --example multimethod`

use nexus_rt::prelude::*;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let fabric = Fabric::new();
    register_defaults(&fabric);

    // The resource database can reorder/restrict methods and set
    // parameters — here we just set a TCP knob and keep the default order.
    let cfg = RtConfig::parse(
        "# multimethod demo\n\
         param tcp.connect_timeout_ms 3000\n",
    )?;
    cfg.apply_registry(fabric.registry())?;

    // Placement: node 0 alone (partition 0); nodes 1,2 share partition 7.
    let n0 = fabric.create_context_with(ContextOpts {
        node: NodeId(0),
        partition: PartitionId(0),
        ..Default::default()
    })?;
    let n1 = fabric.create_context_with(ContextOpts {
        node: NodeId(1),
        partition: PartitionId(7),
        ..Default::default()
    })?;
    let n2 = fabric.create_context_with(ContextOpts {
        node: NodeId(2),
        partition: PartitionId(7),
        ..Default::default()
    })?;

    let hits = Arc::new(AtomicU32::new(0));
    {
        let hits = Arc::clone(&hits);
        n2.register_handler("poke", move |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    let ep = n2.create_endpoint();
    let sp = n2.startpoint_to(ep)?;
    println!(
        "descriptor table attached to the startpoint: {:?}",
        sp.links()[0].table().methods()
    );

    let wait_hit =
        |n: u32| n2.progress_until(|| hits.load(Ordering::Relaxed) >= n, Duration::from_secs(5));

    // --- use from node 0: only TCP applies -------------------------------
    println!(
        "[node 0] applicable methods: {:?}",
        n0.applicable_methods(&sp)?
    );
    n0.rsr(&sp, "poke", Buffer::new())?;
    assert!(wait_hit(1));
    println!(
        "[node 0] automatic selection chose: {}",
        sp.current_methods()[0].1.unwrap()
    );

    // --- migrate the startpoint to node 1 (same partition as node 2) -----
    // Copying/serializing a startpoint mirrors its links; the receiving
    // context re-runs selection against its own placement.
    let mut carrier = Buffer::new();
    sp.pack(&mut carrier);
    let migrated = Startpoint::unpack(&mut carrier, &n1)?;
    println!(
        "[node 1] applicable methods after migration: {:?}",
        n1.applicable_methods(&migrated)?
    );
    n1.rsr(&migrated, "poke", Buffer::new())?;
    assert!(wait_hit(2));
    println!(
        "[node 1] automatic selection chose: {} (MPL is applicable here)",
        migrated.current_methods()[0].1.unwrap()
    );

    // --- manual selection: pin, then edit the table ----------------------
    migrated.set_method(MethodId::TCP);
    n1.rsr(&migrated, "poke", Buffer::new())?;
    assert!(wait_hit(3));
    println!(
        "[node 1] after manual pin: {}",
        migrated.current_methods()[0].1.unwrap()
    );
    migrated.clear_method();
    // Deleting the MPL descriptor also disables the method for this link.
    migrated.edit_table(migrated.targets()[0], |t| {
        t.remove(MethodId::MPL);
    });
    n1.rsr(&migrated, "poke", Buffer::new())?;
    assert!(wait_hit(4));
    println!(
        "[node 1] after deleting the MPL descriptor: {}",
        migrated.current_methods()[0].1.unwrap()
    );

    // --- enquiry: per-method traffic counters -----------------------------
    for (method, snap) in n2.stats().snapshot() {
        if snap.recvs > 0 {
            println!(
                "[node 2] received {} RSR(s) over {} ({} bytes)",
                snap.recvs, method, snap.recv_bytes
            );
        }
    }

    // --- enquiry: measured costs from the trace layer ---------------------
    // Every probe and every transport send was timed; the EWMAs and the
    // per-(link, method) latency histograms are what a QoS policy (or a
    // curious programmer, §2.1) reads instead of a-priori constants.
    for method in [MethodId::MPL, MethodId::TCP] {
        let est = n2.method_cost_estimate(method);
        if let Some(ns) = est.poll_cost_ns {
            println!(
                "[node 2] measured {} poll cost: {:.0} ns over {} probes",
                method, ns, est.poll_samples
            );
        }
    }
    println!("\n[node 1] trace report:\n{}", n1.trace().render());
    fabric.shutdown();
    Ok(())
}
