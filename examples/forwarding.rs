//! The forwarding-node design of §3.3.
//!
//! Worker contexts inside a partition do not poll TCP at all; their
//! descriptor tables advertise the *forwarder's* TCP address instead. An
//! external context's RSRs land on the forwarder, which re-sends them over
//! the fast partition-scoped method. The workers' poll loops stay cheap —
//! the design's point — at the cost of an extra hop, which is why the
//! tuned-skip_poll configuration beats it in Table 1.
//!
//! Run with: `cargo run --example forwarding`

use nexus_rt::prelude::*;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let fabric = Fabric::new();
    register_defaults(&fabric);

    // The forwarder enables everything, including TCP.
    let forwarder = fabric.create_context_with(ContextOpts {
        node: NodeId(0),
        partition: PartitionId(1),
        ..Default::default()
    })?;
    // Workers enable only the fast in-partition methods; TCP traffic for
    // them routes via the forwarder.
    let mut workers = Vec::new();
    for node in 1..=4u32 {
        workers.push(fabric.create_context_with(ContextOpts {
            node: NodeId(node),
            partition: PartitionId(1),
            methods: Some(vec![MethodId::SHMEM, MethodId::MPL]),
            forward_via: Some(ForwardVia {
                method: MethodId::TCP,
                forwarder: forwarder.id(),
            }),
        })?);
    }
    // The external context (another "site"): TCP only.
    let external = fabric.create_context_with(ContextOpts {
        node: NodeId(99),
        partition: PartitionId(2),
        methods: Some(vec![MethodId::TCP]),
        ..Default::default()
    })?;

    let hits = Arc::new(AtomicU32::new(0));
    let mut sps = Vec::new();
    for w in &workers {
        let hits = Arc::clone(&hits);
        let id = w.id();
        w.register_handler("work", move |args| {
            let item = args.buffer.get_u32().unwrap();
            println!("[worker {id}] received work item {item} (over MPL, via the forwarder)");
            hits.fetch_add(1, Ordering::Relaxed);
        });
        let ep = w.create_endpoint();
        sps.push(w.startpoint_to(ep)?);
    }
    println!(
        "worker descriptor tables advertise TCP via the forwarder: {:?}",
        workers[0].descriptor_table().methods()
    );

    // The external site sends one item to each worker. The only method it
    // shares with them is TCP — whose receive side lives on the forwarder.
    for (i, sp) in sps.iter().enumerate() {
        let mut buf = Buffer::new();
        buf.put_u32(i as u32);
        external.rsr(sp, "work", buf)?;
    }

    let all_done = forwarder.progress_until(
        || {
            for w in &workers {
                let _ = w.progress();
            }
            hits.load(Ordering::Relaxed) == workers.len() as u32
        },
        Duration::from_secs(10),
    );
    assert!(all_done, "all work items must arrive through the forwarder");

    let fwd_stats = forwarder.stats().snapshot_method(MethodId::TCP);
    println!(
        "forwarder relayed {} message(s) that arrived over TCP",
        fwd_stats.forwards
    );
    for w in &workers {
        let s = w.stats().snapshot_method(MethodId::TCP);
        assert_eq!(s.polls, 0, "workers never poll TCP — that is the point");
    }
    println!("workers performed zero TCP polls");
    fabric.shutdown();
    Ok(())
}
