//! Quickstart: communication links and remote service requests.
//!
//! Creates two contexts in one fabric, links them, and performs an RSR
//! round: `a` ships a buffer to an endpoint in `b`, whose handler replies
//! over a startpoint that travelled *inside* the request — the mobile-name
//! pattern at the heart of the paper.
//!
//! Run with: `cargo run --example quickstart`

use nexus_rt::prelude::*;
use nexus_transports::register_defaults;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    // A fabric holds contexts (address spaces) and communication modules.
    let fabric = Fabric::new();
    register_defaults(&fabric); // local, shmem, mpl, tcp, udp, rudp

    let a = fabric.create_context()?;
    let b = fabric.create_context()?;
    println!("created contexts {} and {}", a.id(), b.id());
    println!(
        "context {} advertises methods (fastest first): {:?}",
        b.id(),
        b.descriptor_table().methods()
    );

    // --- receive side: an endpoint plus handlers -------------------------
    b.register_handler("greet", |args| {
        // The request carries (reply startpoint, name).
        let reply_sp = Startpoint::unpack(args.buffer, args.context)
            .expect("request carries a reply startpoint");
        let name = args.buffer.get_str().expect("request carries a name");
        println!("[b] greet({name:?}) — replying over the travelled startpoint");
        let mut reply = Buffer::new();
        reply.put_str(&format!("hello, {name}!"));
        args.context.rsr(&reply_sp, "greeting", reply).unwrap();
        reply_sp.clear_method();
    });

    let done = Arc::new(AtomicU32::new(0));
    {
        let done = Arc::clone(&done);
        a.register_handler("greeting", move |args| {
            let text = args.buffer.get_str().unwrap();
            println!("[a] received: {text:?}");
            done.store(1, Ordering::Relaxed);
        });
    }

    // --- sending side: build the link and issue the RSR ------------------
    let ep_b = b.create_endpoint();
    let sp_to_b = b.startpoint_to(ep_b)?; // the communication link a -> b

    let ep_a = a.create_endpoint();
    let reply_sp = a.startpoint_to(ep_a)?; // will travel inside the request

    let mut request = Buffer::new();
    reply_sp.pack(&mut request); // startpoints are mobile
    request.put_str("metacomputing");
    a.rsr(&sp_to_b, "greet", request)?;

    // Message-driven execution: progress both contexts until the reply
    // lands (real applications spin a progress thread per context).
    b.progress_until(|| false, Duration::from_millis(1));
    let ok = a.progress_until(
        || {
            let _ = b.progress();
            done.load(Ordering::Relaxed) == 1
        },
        Duration::from_secs(5),
    );
    assert!(ok, "reply should arrive");

    // Enquiry: which method did the automatic policy pick?
    println!(
        "link a->b used method: {:?} (same node, so shared memory wins)",
        sp_to_b.current_methods()[0].1.map(|m| m.to_string())
    );
    fabric.shutdown();
    Ok(())
}
