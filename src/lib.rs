//! Facade crate re-exporting the nexus workspace.
pub use nexus_climate as climate;
pub use nexus_mpi as mpi;
pub use nexus_nbody as nbody;
pub use nexus_rt as rt;
pub use nexus_simnet as simnet;
pub use nexus_transports as transports;
